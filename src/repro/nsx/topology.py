"""The synthetic logical topology behind the Table 3 rule set."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.net.addresses import MacAddress, ip_to_int
from repro.sim.rng import make_rng

#: Table 3 constants.
N_VMS = 15
IFACES_PER_VM = 2
N_TUNNELS = 291
N_LOGICAL_SWITCHES = 5


@dataclass(frozen=True)
class Vif:
    """One VM interface on a logical switch."""

    vif_id: int
    vm_index: int
    logical_switch: int
    mac: MacAddress
    ip: int
    #: conntrack zone of the distributed firewall section guarding it.
    fw_zone: int


@dataclass(frozen=True)
class Vtep:
    """A remote tunnel endpoint (another hypervisor)."""

    index: int
    ip: int
    vni: int


@dataclass(frozen=True)
class RemoteMac:
    """A MAC learned behind a remote VTEP (L2 over the overlay)."""

    mac: MacAddress
    logical_switch: int
    vtep_index: int


@dataclass
class LogicalTopology:
    vifs: List[Vif] = field(default_factory=list)
    vteps: List[Vtep] = field(default_factory=list)
    remote_macs: List[RemoteMac] = field(default_factory=list)
    #: Logical router interface MAC (one distributed router).
    router_mac: MacAddress = MacAddress.local(0xD0)
    #: logical switch -> subnet (/24 network address).
    subnets: Dict[int, int] = field(default_factory=dict)

    @property
    def n_vms(self) -> int:
        return len({v.vm_index for v in self.vifs})


def build_topology(
    n_vms: int = N_VMS,
    ifaces_per_vm: int = IFACES_PER_VM,
    n_tunnels: int = N_TUNNELS,
    n_switches: int = N_LOGICAL_SWITCHES,
    remote_macs_per_vtep: int = 3,
    seed: int = 7,
) -> LogicalTopology:
    """Deterministically synthesise a hypervisor's view of the overlay."""
    rng = make_rng("nsx-topology", seed)
    topo = LogicalTopology()
    for ls in range(n_switches):
        topo.subnets[ls] = ip_to_int(f"10.{100 + ls}.0.0")
    vif_id = 0
    for vm in range(n_vms):
        for iface in range(ifaces_per_vm):
            ls = (vm + iface) % n_switches
            vif_id += 1
            topo.vifs.append(
                Vif(
                    vif_id=vif_id,
                    vm_index=vm,
                    logical_switch=ls,
                    mac=MacAddress.local(0x1000 + vif_id),
                    ip=topo.subnets[ls] | (10 + vif_id),
                    fw_zone=100 + ls,
                )
            )
    for i in range(n_tunnels):
        topo.vteps.append(
            Vtep(
                index=i,
                ip=ip_to_int(f"192.168.{1 + i // 200}.{2 + i % 200}"),
                vni=5000 + (i % n_switches),
            )
        )
    mac_idx = 0
    for vtep in topo.vteps:
        for _ in range(remote_macs_per_vtep):
            mac_idx += 1
            topo.remote_macs.append(
                RemoteMac(
                    mac=MacAddress.local(0x20000 + mac_idx),
                    logical_switch=rng.randrange(n_switches),
                    vtep_index=vtep.index,
                )
            )
    return topo
