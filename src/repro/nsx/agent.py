"""The NSX agent: configures OVS through OVSDB + OpenFlow (§4, Figure 7).

"The NSX agent uses OVSDB ... to create two bridges: an integration
bridge for connecting virtual interfaces among VMs, and an underlay
bridge for tunnel endpoint and inter-host uplink traffic.  Then it
transforms the NSX network policies into flow rules and uses the
OpenFlow protocol to install them into the bridges."

Here the tunnel ports and the uplink live on the integration bridge and
underlay classification occupies table 0 — one datapath either way, the
same number of lookups per packet as the paper's description.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.net.addresses import MacAddress
from repro.nsx.ruleset import PortMap, RulesetStats, collect_stats, install_ruleset
from repro.nsx.topology import LogicalTopology, build_topology
from repro.ovs.ofproto import OfPort
from repro.ovs.vswitchd import VSwitchd
from repro.sim.costs import DEFAULT_COSTS
from repro.sim.cpu import ExecContext


class NsxAgent:
    INTEGRATION_BRIDGE = "br-int"

    def __init__(self, vswitchd: VSwitchd,
                 topology: Optional[LogicalTopology] = None) -> None:
        self.vs = vswitchd
        self.topo = topology or build_topology()
        self.stats: Optional[RulesetStats] = None

    def deploy(
        self,
        uplink: OfPort,
        vif_ports: Dict[int, OfPort],
        local_vtep_ip: str = "192.168.1.1",
        target_rules: Optional[int] = None,
        neighbor_macs: Optional[Dict[int, MacAddress]] = None,
    ) -> RulesetStats:
        """Configure tunnels and install the rule set on ``br-int``.

        ``uplink`` and every port in ``vif_ports`` must already exist on
        the integration bridge.  Missing VIFs in ``vif_ports`` get the
        uplink as a harmless stand-in (their rules still count; a real
        agent similarly programs rules for not-yet-plugged VIFs).
        """
        bridge = self.vs.bridge(self.INTEGRATION_BRIDGE)
        # Tunnel ports for every remote VTEP, plus control-plane priming:
        # the kernel must know how to route/ARP each endpoint, because
        # translation resolves encap through the Netlink replicas (§4).
        ns = self.vs.kernel.init_ns
        tunnels: Dict[int, "tuple[int, str]"] = {}
        uplink_dev = None
        if self.vs.dpif_netdev is not None:
            uplink_dev = self.vs.dpif_netdev.port_device(uplink.dp_port_no)
        elif self.vs.dpif_netlink is not None:
            uplink_dev = self.vs.dpif_netlink.port_device(uplink.dp_port_no)
        for vtep in self.topo.vteps:
            name = f"geneve{vtep.index}"
            port = self.vs.add_tunnel_port(
                self.INTEGRATION_BRIDGE, name, "geneve",
                vtep.ip, key=vtep.vni,
            )
            tunnels[vtep.index] = (port.ofport, name)
            if uplink_dev is not None:
                mac = None
                if neighbor_macs is not None:
                    mac = neighbor_macs.get(vtep.ip)
                if mac is None:
                    mac = MacAddress.local(0x30000 + vtep.index)
                ns.neighbors.update(vtep.ip, mac, uplink_dev.ifindex,
                                    permanent=True)

        # Unplugged VIFs get distinct placeholder ofports: the agent
        # programs rules for them ahead of VM arrival (as NSX does); the
        # rules are installed but simply never hit.
        vif_map: Dict[int, "tuple[int, str]"] = {}
        placeholder = 10_000
        for vif in self.topo.vifs:
            if vif.vif_id in vif_ports:
                port = vif_ports[vif.vif_id]
                vif_map[vif.vif_id] = (port.ofport, port.name)
            else:
                placeholder += 1
                vif_map[vif.vif_id] = (placeholder,
                                       f"unplugged-vif{vif.vif_id}")
        port_map = PortMap(
            uplink_ofport=uplink.ofport,
            uplink_name=uplink.name,
            vifs=vif_map,
            tunnels=tunnels,
        )
        kwargs = {}
        if target_rules is not None:
            kwargs["target_rules"] = target_rules
        install_ruleset(bridge, self.topo, port_map, **kwargs)
        # SYN-policing meter used by T12.
        if self.vs.dpif_netdev is not None:
            try:
                self.vs.dpif_netdev.meters.add(1, rate_kbps=1_000_000)
            except ValueError:
                pass
        self.stats = collect_stats(bridge, self.topo)
        return self.stats

    def bind_vif(self, vif_id: int, port: OfPort,
                 vif_ports: Dict[int, OfPort]) -> None:
        vif_ports[vif_id] = port

    def resync(self, ctx: ExecContext) -> int:
        """Desired-state re-sync after a vswitchd restart.

        NSX reconciles declaratively: on OpenFlow reconnect it replays
        the full desired rule set as bundled flow_mods.  The rules are
        already present in ofproto (our restart model keeps them — the
        controller re-installs identical state), so the observable cost
        is the per-rule programming time, charged to the supervisor's
        control context.  Returns the number of rules replayed.
        """
        n_rules = sum(bridge.n_flows()
                      for bridge in self.vs.ofproto.bridges.values())
        ctx.charge(n_rules * DEFAULT_COSTS.nsx_resync_per_rule_ns,
                   label="nsx_resync")
        return n_rules
