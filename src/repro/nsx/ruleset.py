"""The production-grade OpenFlow rule set (Table 3).

Synthesises the rule set of one NSX hypervisor with exactly the paper's
reported shape:

* 103,302 OpenFlow rules,
* 40 OpenFlow tables,
* 31 distinct matching fields,
* 291 Geneve tunnels,
* Geneve tunneling + a distributed firewall with conntrack zones, so
  "many packets recirculate through the datapath twice" (§5.1): the
  outer-header pass, the inner pass that sends to conntrack, and the
  post-conntrack pass that forwards.

The pipeline is NSX-shaped: classification (T0), port security (T1),
DFW conntrack dispatch (T2/T3), DFW sections per logical switch (T4-T8 —
this is where the bulk of the rules live), logical routing (T10-T13),
L2 lookup (T14), egress QoS/diagnostics (T15-T19), inbound-from-overlay
pipeline (T20-T29), output (T30/T31), service tables (T32-T39).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Set

from repro.kernel.conntrack import (
    CT_ESTABLISHED,
    CT_INVALID,
    CT_NEW,
)
from repro.net.addresses import ip_to_int
from repro.net.ipv4 import IPProto
from repro.net.tunnel import GENEVE_PORT
from repro.ovs.match import Match
from repro.ovs.ofactions import (
    CtAction,
    GotoTable,
    MeterAction,
    OutputAction,
    PopTunnel,
    SetFieldAction,
)
from repro.ovs.ofproto import Bridge
from repro.ovs.openflow import OpenFlowConnection
from repro.nsx.topology import LogicalTopology
from repro.sim.rng import make_rng

#: Table 3's headline number.
TARGET_RULES = 103_302
N_TABLES = 40

# Table ids.
T_CLASS = 0
T_PORTSEC = 1
T_DFW_DISPATCH = 2
T_DFW_STATE = 3
T_DFW_BASE = 4          # T4..T8: one DFW section per logical switch
T_DFW_DEFAULT = 9
T_L3 = 10
T_L3_EXTRA = 11         # T11..T13
T_L2 = 14
T_EGRESS_QOS = 15       # T15..T19
T_IN_CLASS = 20
T_IN_DFW_DISPATCH = 21
T_IN_DFW_STATE = 22
T_IN_DFW = 23
T_IN_EXTRA = 24
T_IN_L2 = 25
T_IN_MISC = 26          # T26..T29
T_OUT_LOCAL = 30
T_OUT_REMOTE = 31
T_SERVICE = 32          # T32..T39


@dataclass
class RulesetStats:
    n_rules: int
    n_tables: int
    n_match_fields: int
    n_tunnels: int
    n_vms: int
    n_vifs: int


@dataclass
class PortMap:
    """How logical entities map onto this bridge's ports."""

    uplink_ofport: int
    uplink_name: str
    #: vif_id -> (ofport, port name)
    vifs: Dict[int, "tuple[int, str]"]
    #: vtep index -> (ofport, tunnel port name)
    tunnels: Dict[int, "tuple[int, str]"]


def install_ruleset(
    bridge: Bridge,
    topo: LogicalTopology,
    ports: PortMap,
    target_rules: int = TARGET_RULES,
    seed: int = 11,
) -> int:
    """Install the synthetic production rule set; returns the rule count."""
    of = OpenFlowConnection(bridge)
    rng = make_rng("nsx-ruleset", seed)

    self_count = 0

    def add(table: int, priority: int, match: Match, actions) -> None:
        nonlocal self_count
        of.add_flow(table, priority, match, actions)
        self_count += 1

    # ------------------------------------------------------------- T0
    # Tunnel traffic from known VTEPs: decapsulate.
    for vtep in topo.vteps:
        _, tun_name = ports.tunnels[vtep.index]
        add(T_CLASS, 200,
            Match(in_port=ports.uplink_ofport, eth_type=0x0800,
                  nw_proto=IPProto.UDP, tp_dst=GENEVE_PORT,
                  nw_src=vtep.ip),
            [PopTunnel(tun_name)])
    # Decapsulated traffic re-enters on its tunnel port.
    for vtep in topo.vteps:
        tun_ofport, _ = ports.tunnels[vtep.index]
        add(T_CLASS, 150, Match(in_port=tun_ofport), [GotoTable(T_IN_CLASS)])
    # VIF traffic: stamp reg0 (logical port) and metadata (switch).
    for vif in topo.vifs:
        ofport, _name = ports.vifs[vif.vif_id]
        add(T_CLASS, 100, Match(in_port=ofport),
            [SetFieldAction("reg0", vif.vif_id),
             SetFieldAction("metadata", vif.logical_switch),
             GotoTable(T_PORTSEC)])
    # Guards: no VLANs inside the overlay; drop fragments conservatively.
    add(T_CLASS, 90, Match(vlan_tci=(0x1000, 0x1000)), [])
    add(T_CLASS, 80, Match(eth_type=0x0800, nw_frag=(1, 1)), [])
    add(T_CLASS, 70, Match(eth_type=0x0800, nw_ttl=0), [])
    add(T_CLASS, 1, Match(), [])

    # ------------------------------------------------------------- T1
    for vif in topo.vifs:
        add(T_PORTSEC, 100,
            Match(reg0=vif.vif_id, eth_src=vif.mac.value, eth_type=0x0800,
                  nw_src=vif.ip),
            [GotoTable(T_DFW_DISPATCH)])
        add(T_PORTSEC, 100,
            Match(reg0=vif.vif_id, eth_src=vif.mac.value, eth_type=0x0806),
            [GotoTable(T_L2)])  # ARP skips the IP firewall
        add(T_PORTSEC, 10, Match(reg0=vif.vif_id), [])  # spoofed: drop
    add(T_PORTSEC, 1, Match(), [])

    # ------------------------------------------------------------- T2/T3
    for vif in topo.vifs:
        add(T_DFW_DISPATCH, 100, Match(reg0=vif.vif_id),
            [SetFieldAction("reg1", vif.fw_zone),
             CtAction(zone=vif.fw_zone, table=T_DFW_STATE)])
    add(T_DFW_DISPATCH, 1, Match(), [])
    add(T_DFW_STATE, 200, Match(ct_state=(CT_INVALID, CT_INVALID)), [])
    for ls in topo.subnets:
        zone = 100 + ls
        add(T_DFW_STATE, 100,
            Match(ct_state=(CT_ESTABLISHED, CT_ESTABLISHED), ct_zone=zone),
            [GotoTable(T_L3)])
    for ls in topo.subnets:
        add(T_DFW_STATE, 50, Match(ct_state=(CT_NEW, CT_NEW), metadata=ls),
            [GotoTable(T_DFW_BASE + ls)])
    add(T_DFW_STATE, 1, Match(), [])

    # ---------------------------------------------------- T4..T8 (bulk)
    # Per-switch DFW sections.  First the structural allow rules the
    # workloads rely on, then synthetic tenant ACLs up to the target.
    for ls, subnet in topo.subnets.items():
        table = T_DFW_BASE + ls
        zone = 100 + ls
        # Allow new intra-subnet traffic, committing the connection.
        add(table, 500,
            Match(metadata=ls, eth_type=0x0800,
                  nw_src=(subnet, 0xFFFFFF00), nw_dst=(subnet, 0xFFFFFF00)),
            [CtAction(zone=zone, commit=True, table=T_L3)])
        # Allow routed traffic to the other logical switches.
        add(table, 400, Match(metadata=ls, eth_type=0x0800),
            [CtAction(zone=zone, commit=True, table=T_L3)])
        add(table, 1, Match(), [])

    # ------------------------------------------------------------- T9
    add(T_DFW_DEFAULT, 1, Match(), [])

    # ------------------------------------------------------------- T10
    for vif in topo.vifs:
        add(T_L3, 200,
            Match(eth_dst=topo.router_mac.value, eth_type=0x0800,
                  nw_dst=vif.ip),
            [SetFieldAction("eth_src", topo.router_mac.value),
             SetFieldAction("eth_dst", vif.mac.value),
             SetFieldAction("nw_ttl", 63),
             SetFieldAction("metadata", vif.logical_switch),
             GotoTable(T_L2)])
    for ls, subnet in topo.subnets.items():
        add(T_L3, 100,
            Match(eth_dst=topo.router_mac.value, eth_type=0x0800,
                  nw_dst=(subnet, 0xFFFFFF00)),
            [SetFieldAction("eth_src", topo.router_mac.value),
             SetFieldAction("nw_ttl", 63),
             SetFieldAction("metadata", ls),
             GotoTable(T_L2)])
    add(T_L3, 10, Match(), [GotoTable(T_L2)])  # bridged traffic

    # ------------------------------------------- T11..T13: router extras
    add(T_L3_EXTRA, 100, Match(eth_type=0x0800, nw_tos=(0xB8, 0xFC)),
        [GotoTable(T_L2)])  # EF DSCP fast-path (uses nw_tos)
    add(T_L3_EXTRA, 1, Match(), [GotoTable(T_L2)])
    add(T_L3_EXTRA + 1, 100,
        Match(eth_type=0x0800, nw_proto=IPProto.TCP,
              tcp_flags=(0x02, 0x17)),
        [MeterAction(1), GotoTable(T_L2)])  # SYN policing
    add(T_L3_EXTRA + 1, 1, Match(), [GotoTable(T_L2)])
    add(T_L3_EXTRA + 2, 100, Match(eth_type=0x0806, nw_proto=1),
        [GotoTable(T_L2)])  # ARP requests
    add(T_L3_EXTRA + 2, 1, Match(), [])

    # ------------------------------------------------------------- T14
    for vif in topo.vifs:
        add(T_L2, 100,
            Match(metadata=vif.logical_switch, eth_dst=vif.mac.value),
            [SetFieldAction("reg2", vif.vif_id), GotoTable(T_OUT_LOCAL)])
    for rm in topo.remote_macs:
        add(T_L2, 100,
            Match(metadata=rm.logical_switch, eth_dst=rm.mac.value),
            [SetFieldAction("reg3", rm.vtep_index + 1),
             GotoTable(T_OUT_REMOTE)])
    # Broadcast: deliver to the logical switch's local VIFs (ARP etc.).
    for ls in topo.subnets:
        actions = []
        for vif in topo.vifs:
            if vif.logical_switch == ls:
                _, name = ports.vifs[vif.vif_id]
                actions.append(OutputAction(name))
        add(T_L2, 50,
            Match(metadata=ls, eth_dst=0xFFFFFFFFFFFF), actions)
    add(T_L2, 1, Match(), [])

    # ---------------------------------------------- T15..T19 egress QoS
    for i in range(5):
        table = T_EGRESS_QOS + i
        add(table, 100, Match(reg4=i + 1), [GotoTable(T_OUT_LOCAL)])
        add(table, 1, Match(), [])

    # ------------------------------------------------------------- T20
    for ls in topo.subnets:
        add(T_IN_CLASS, 100, Match(tun_id=5000 + ls),
            [SetFieldAction("metadata", ls),
             GotoTable(T_IN_DFW_DISPATCH)])
    add(T_IN_CLASS, 1, Match(), [])

    # ------------------------------------------------------- T21..T25
    for ls in topo.subnets:
        zone = 100 + ls
        add(T_IN_DFW_DISPATCH, 100, Match(metadata=ls),
            [CtAction(zone=zone, table=T_IN_DFW_STATE)])
    add(T_IN_DFW_DISPATCH, 1, Match(), [])
    add(T_IN_DFW_STATE, 200, Match(ct_state=(CT_INVALID, CT_INVALID)), [])
    add(T_IN_DFW_STATE, 100,
        Match(ct_state=(CT_ESTABLISHED, CT_ESTABLISHED)),
        [GotoTable(T_IN_L2)])
    add(T_IN_DFW_STATE, 50, Match(ct_state=(CT_NEW, CT_NEW)),
        [GotoTable(T_IN_DFW)])
    add(T_IN_DFW_STATE, 1, Match(), [])
    for vif in topo.vifs:
        add(T_IN_DFW, 100,
            Match(eth_type=0x0800, nw_dst=vif.ip),
            [CtAction(zone=vif.fw_zone, commit=True, table=T_IN_L2)])
    add(T_IN_DFW, 1, Match(), [])
    # T24: inbound diagnostics (uses tun_src/tun_dst/ct_mark/reg5..8).
    add(T_IN_EXTRA, 100, Match(tun_src=topo.vteps[0].ip),
        [GotoTable(T_IN_L2)])
    add(T_IN_EXTRA, 90, Match(tun_dst=ip_to_int("192.168.1.1")),
        [GotoTable(T_IN_L2)])
    add(T_IN_EXTRA, 80, Match(ct_mark=1), [GotoTable(T_IN_L2)])
    add(T_IN_EXTRA, 75, Match(reg1=101), [GotoTable(T_IN_L2)])
    add(T_IN_EXTRA, 70, Match(reg5=1), [GotoTable(T_IN_L2)])
    add(T_IN_EXTRA, 60, Match(reg6=1), [GotoTable(T_IN_L2)])
    add(T_IN_EXTRA, 50, Match(reg7=1), [GotoTable(T_IN_L2)])
    add(T_IN_EXTRA, 40, Match(reg8=1), [GotoTable(T_IN_L2)])
    add(T_IN_EXTRA, 30, Match(recirc_id=0), [GotoTable(T_IN_L2)])
    add(T_IN_EXTRA, 20, Match(eth_type=0x0800, nw_proto=IPProto.UDP,
                              tp_src=GENEVE_PORT), [])
    add(T_IN_EXTRA, 1, Match(), [])
    for vif in topo.vifs:
        add(T_IN_L2, 100,
            Match(eth_dst=vif.mac.value),
            [SetFieldAction("reg2", vif.vif_id), GotoTable(T_OUT_LOCAL)])
    add(T_IN_L2, 1, Match(), [])

    # ----------------------------------------------------- T26..T29
    for i in range(4):
        add(T_IN_MISC + i, 1, Match(), [])

    # ------------------------------------------------------- T30/T31
    for vif in topo.vifs:
        _, name = ports.vifs[vif.vif_id]
        add(T_OUT_LOCAL, 100, Match(reg2=vif.vif_id), [OutputAction(name)])
    add(T_OUT_LOCAL, 1, Match(), [])
    for vtep in topo.vteps:
        _, tun_name = ports.tunnels[vtep.index]
        add(T_OUT_REMOTE, 100, Match(reg3=vtep.index + 1),
            [OutputAction(tun_name)])
    add(T_OUT_REMOTE, 1, Match(), [])

    # ----------------------------------------------------- T32..T39
    for i in range(8):
        add(T_SERVICE + i, 1, Match(), [])

    # ------------------------------------------------- synthetic ACLs
    # Tenant firewall rules make up the bulk of a production rule set.
    # Generate deterministic 5-tuple ACLs into the DFW sections until the
    # bridge holds exactly ``target_rules`` rules.
    remaining = target_rules - self_count
    if remaining < 0:
        raise ValueError(
            f"structural rules ({self_count}) already exceed the target"
        )
    n_switches = len(topo.subnets)
    for i in range(remaining):
        ls = i % n_switches
        table = T_DFW_BASE + ls
        zone = 100 + ls
        proto = IPProto.TCP if rng.random() < 0.7 else IPProto.UDP
        src_net = ip_to_int(f"10.{rng.randrange(256)}.{rng.randrange(256)}.0")
        dst_net = ip_to_int(f"10.{rng.randrange(256)}.{rng.randrange(256)}.0")
        port = rng.randrange(1024, 65535)
        allow = rng.random() < 0.5
        actions = (
            [CtAction(zone=zone, commit=True, table=T_L3)] if allow else []
        )
        add(table, 300,
            Match(metadata=ls, eth_type=0x0800, nw_proto=proto,
                  nw_src=(src_net, 0xFFFFFF00),
                  nw_dst=(dst_net, 0xFFFFFF00),
                  tp_dst=port),
            actions)
    return self_count


def collect_stats(bridge: Bridge, topo: LogicalTopology) -> RulesetStats:
    """Compute the Table 3 statistics from the installed bridge."""
    n_rules = 0
    tables_used = 0
    fields: Set[str] = set()
    for table in bridge.tables.values():
        rules = table.rules()
        if not rules:
            continue
        tables_used += 1
        n_rules += len(rules)
        for rule in rules:
            fields.update(rule.match.field_names())
    return RulesetStats(
        n_rules=n_rules,
        n_tables=tables_used,
        n_match_fields=len(fields),
        n_tunnels=len(topo.vteps),
        n_vms=topo.n_vms,
        n_vifs=len(topo.vifs),
    )
