"""AF_XDP: the kernel's high-speed socket channel to userspace.

Implements the machinery of Figure 4: umem frame areas with fill and
completion rings, XSK sockets with rx/tx descriptor rings, the umempool
buffer manager OVS wrote (§3.2 O2/O3), and the OVS ``netdev-afxdp``
driver that ties an XSK to each NIC queue, in zero-copy or copy mode.
"""

from repro.afxdp.rings import DescRing, RingFullError
from repro.afxdp.umem import Umem, FRAME_SIZE
from repro.afxdp.umempool import LockStrategy, UmemPool
from repro.afxdp.socket import XskSocket, BindMode
from repro.afxdp.driver import AfxdpDriver, AfxdpOptions

__all__ = [
    "DescRing",
    "RingFullError",
    "Umem",
    "FRAME_SIZE",
    "LockStrategy",
    "UmemPool",
    "XskSocket",
    "BindMode",
    "AfxdpDriver",
    "AfxdpOptions",
]
