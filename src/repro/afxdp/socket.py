"""XSK: the AF_XDP socket.

One socket binds to one (device, queue) pair.  The kernel side
(:meth:`XskSocket.kernel_rx`, called by the driver's XDP redirect path in
softirq context) moves packets into umem frames posted on the fill ring
and publishes descriptors on the rx ring; the userspace side
(:meth:`XskSocket.user_rx_batch` / :meth:`XskSocket.user_tx_batch`) is
what OVS PMD threads call.

``BindMode.ZEROCOPY`` is XDP_DRV with zero-copy (supported drivers only);
``BindMode.COPY`` is the universal fallback, "at the cost of an extra
packet copy" (§3.5 Limitations).
"""

from __future__ import annotations

import enum
from typing import List, Optional

from repro.afxdp.rings import DescRing
from repro.afxdp.umem import Umem
from repro.afxdp.umempool import UmemPool
from repro.net.packet import Packet
from repro import telemetry
from repro.sim import faults, trace
from repro.sim.costs import DEFAULT_COSTS
from repro.sim.cpu import CpuCategory, ExecContext
from repro.telemetry.drops import DropReason

#: Bounded retry budget after tx-kick EAGAIN, as netdev-afxdp retries
#: ``sendto`` a fixed number of times before giving up on the batch.
TX_KICK_MAX_RETRIES = 4


class BindMode(enum.Enum):
    ZEROCOPY = "zerocopy"  # XDP_DRV + XDP_ZEROCOPY
    COPY = "copy"          # XDP_SKB / XDP_COPY fallback


class XskSocket:
    def __init__(
        self,
        umem: Umem,
        pool: UmemPool,
        bind_mode: BindMode = BindMode.ZEROCOPY,
        ring_size: int = 2048,
    ) -> None:
        self.umem = umem
        self.pool = pool
        self.bind_mode = bind_mode
        self.rx_ring = DescRing(ring_size)
        self.tx_ring = DescRing(ring_size)
        self.bound_device = None  # set by AfxdpDriver
        self.bound_queue: Optional[int] = None
        self.rx_delivered = 0
        self.rx_dropped_no_fill = 0
        self.tx_sent = 0
        # Fault/overload accounting: every non-delivery is counted
        # somewhere (the packet-conservation property audits these).
        self.rx_dropped_overrun = 0
        self.tx_dropped_no_umem = 0
        self.tx_dropped_ring_full = 0
        self.tx_dropped_kick = 0
        self.frames_leaked = 0
        self.zc_fallbacks = 0

    # ------------------------------------------------------------------
    # Kernel side (softirq context).
    # ------------------------------------------------------------------
    def kernel_rx(self, pkt: Packet, ctx: ExecContext) -> bool:
        """The XDP program redirected this frame to us (paths 2-4 of
        Figure 4): take a fill-ring frame, place the packet, publish on
        the rx ring."""
        costs = DEFAULT_COSTS
        rec = trace.ACTIVE
        plan = faults.ACTIVE
        if plan is not None:
            if plan.should_fire("afxdp.fill_ring_overrun"):
                # The producer raced the consumer under overload: the
                # descriptor is torn, the frame dropped with a counter
                # (the silent-success alternative is exactly the bug
                # class this layer exists to expose).
                self.rx_dropped_overrun += 1
                if rec is not None:
                    rec.count("afxdp.rx_dropped_overrun")
                telemetry.drop_event(DropReason.XSK_RX_OVERRUN,
                                     octets=len(pkt))
                return False
            if (self.bind_mode is BindMode.ZEROCOPY
                    and plan.should_fire("afxdp.zc_fallback")):
                # The driver lost zero-copy (paper's support matrix):
                # rebind in copy mode; every packet from here on pays
                # the skb bounce + copy the cost model prices below.
                self.bind_mode = BindMode.COPY
                self.zc_fallbacks += 1
                if rec is not None:
                    rec.count("afxdp.zc_fallbacks")
        desc = self.umem.fill_ring.consume()
        ctx.charge(costs.ring_op_ns, label="fill_pop")
        if desc is None:
            self.rx_dropped_no_fill += 1
            if rec is not None:
                rec.count("afxdp.rx_dropped_no_fill")
            telemetry.drop_event(DropReason.XSK_RX_NO_FILL,
                                 octets=len(pkt))
            return False
        addr, _ = desc
        if self.bind_mode is BindMode.COPY:
            # Generic/copy mode bounces through an skb and copies.
            ctx.charge(
                costs.afxdp_copy_mode_ns + costs.copy_cost(len(pkt)),
                label="afxdp_copy",
            )
            if rec is not None:
                rec.count("afxdp.copies")
                rec.count("afxdp.copy_bytes", len(pkt))
        self.umem.write_frame(addr, pkt)
        self.rx_ring.produce((addr, len(pkt)))
        ctx.charge(costs.ring_op_ns, label="rx_push")
        self.rx_delivered += 1
        return True

    # ------------------------------------------------------------------
    # Userspace side (PMD thread context).
    # ------------------------------------------------------------------
    def user_rx_batch(self, ctx: ExecContext, batch: int = 32) -> List[Packet]:
        """Fetch up to ``batch`` received packets (paths 5-6), then refill
        the fill ring from the pool so the kernel can keep receiving."""
        costs = DEFAULT_COSTS
        ctx.charge(costs.ring_batch_ns, label="rx_batch")
        descs = self.rx_ring.consume_batch(batch)
        if not descs:
            trace.count("afxdp.rx_ring_empty")
            return []
        ctx.charge(len(descs) * costs.ring_op_ns, label="rx_pop")
        pkts = []
        freed = []
        for addr, _length in descs:
            pkts.append(self.umem.read_frame(addr))
            freed.append(addr)
        # Frames are recycled through the pool, then re-posted to fill.
        self.pool.free(freed, ctx)
        self.refill_fill_ring(ctx, len(descs))
        return pkts

    def refill_fill_ring(self, ctx: ExecContext, n: int) -> int:
        costs = DEFAULT_COSTS
        addrs = self.pool.alloc(n, ctx)
        if not addrs:
            return 0
        produced = self.umem.fill_ring.produce_batch([(a, 0) for a in addrs])
        ctx.charge(costs.ring_batch_ns + produced * costs.ring_op_ns,
                   label="fill_push")
        if produced < len(addrs):
            trace.count("afxdp.fill_ring_full")
            self.pool.free(addrs[produced:], ctx)
        return produced

    def user_tx_batch(self, pkts: List[Packet], ctx: ExecContext) -> int:
        """Queue packets on the tx ring and kick the kernel.

        The kick is the syscall §5.5 names as a major AF_XDP overhead:
        the kernel then drives the frames out of the bound device in the
        caller's (system) context.
        """
        if not pkts:
            return 0
        costs = DEFAULT_COSTS
        rec = trace.ACTIVE
        plan = faults.ACTIVE
        if plan is not None and plan.should_fire("afxdp.umem_exhausted"):
            # The pool ran dry (frames in flight, completions pending):
            # the whole burst is dropped, counted per ring.
            self.tx_dropped_no_umem += len(pkts)
            if rec is not None:
                rec.count("afxdp.tx_dropped_no_umem", len(pkts))
            telemetry.drop_event(DropReason.XSK_TX_NO_UMEM, n=len(pkts),
                                 octets=sum(len(p) for p in pkts))
            return 0
        addrs = self.pool.alloc(len(pkts), ctx, batched=True)
        n = len(addrs)
        if n < len(pkts):
            # A genuine shortfall (e.g. frames leaked by completion-ring
            # overruns): the excess packets are dropped, not silently
            # forgotten.
            self.tx_dropped_no_umem += len(pkts) - n
            if rec is not None:
                rec.count("afxdp.tx_dropped_no_umem", len(pkts) - n)
            telemetry.drop_event(DropReason.XSK_TX_NO_UMEM,
                                 n=len(pkts) - n,
                                 octets=sum(len(p) for p in pkts[n:]))
        for addr, pkt in zip(addrs, pkts[:n]):
            if self.bind_mode is BindMode.COPY:
                ctx.charge(costs.copy_cost(len(pkt)), label="tx_copy")
                if rec is not None:
                    rec.count("afxdp.copies")
                    rec.count("afxdp.copy_bytes", len(pkt))
            self.umem.write_frame(addr, pkt)
        produced = self.tx_ring.produce_batch(
            [(addr, len(pkt)) for addr, pkt in zip(addrs, pkts[:n])]
        )
        if produced < n:
            # Ring full: drop the overflow *and* return its frames to
            # the pool (they used to leak here).
            self.tx_dropped_ring_full += n - produced
            if rec is not None:
                rec.count("afxdp.tx_ring_full")
                rec.count("afxdp.tx_dropped_ring_full", n - produced)
            telemetry.drop_event(
                DropReason.XSK_TX_RING_FULL, n=n - produced,
                octets=sum(len(p) for p in pkts[produced:n]))
            self.pool.free(addrs[produced:], ctx, batched=True)
        ctx.charge(costs.ring_batch_ns + produced * costs.ring_op_ns,
                   label="tx_push")
        self._kick_tx(ctx)
        return produced

    def _kick_tx(self, ctx: ExecContext) -> None:
        """sendto(MSG_DONTWAIT): the kernel transmits queued descriptors
        and reports them on the completion ring."""
        costs = DEFAULT_COSTS
        device = self.bound_device
        plan = faults.ACTIVE
        trace.count("afxdp.tx_kick_syscalls")
        with ctx.as_category(CpuCategory.SYSTEM):
            if plan is not None:
                attempt = 0
                while plan.should_fire("afxdp.tx_kick_eagain"):
                    # EAGAIN: the syscall entry/exit was still paid.
                    # Retry with bounded exponential backoff, charged
                    # in virtual time (waited, not burned — netdev-afxdp
                    # services other queues meanwhile).
                    ctx.charge(costs.syscall_base_ns, label="tx_kick")
                    trace.count("afxdp.tx_kick_eagain")
                    if attempt >= TX_KICK_MAX_RETRIES:
                        # Retry budget exhausted: drop the queued
                        # descriptors and recycle their frames through
                        # the completion ring so the pool stays whole.
                        descs = self.tx_ring.consume_batch(
                            self.tx_ring.size)
                        if descs:
                            self.tx_dropped_kick += len(descs)
                            trace.count("afxdp.tx_dropped_kick",
                                        len(descs))
                            telemetry.drop_event(
                                DropReason.XSK_TX_KICK, n=len(descs),
                                octets=sum(ln for _, ln in descs))
                            self.umem.completion_ring.produce_batch(
                                [(addr, 0) for addr, _ in descs])
                        ctx.charge(
                            costs.ring_batch_ns
                            + len(descs) * costs.ring_op_ns,
                            label="comp_push",
                        )
                        return
                    ctx.wait(costs.tx_kick_backoff_ns * (1 << attempt),
                             label="tx_kick_backoff")
                    attempt += 1
            ctx.charge(costs.syscall_base_ns, label="tx_kick")
            descs = self.tx_ring.consume_batch(self.tx_ring.size)
            done = []
            for addr, _length in descs:
                pkt = self.umem.read_frame(addr)
                if device is not None:
                    device.transmit(pkt, ctx)
                self.tx_sent += 1
                done.append((addr, 0))
            if (plan is not None and done
                    and plan.should_fire("afxdp.comp_ring_overrun")):
                # The completion ring had no room: the kernel cannot
                # report these frames back, so they stay "in flight"
                # forever — the pool shrinks, and umem exhaustion
                # emerges downstream (with its own counters).
                self.frames_leaked += len(done)
                trace.count("afxdp.comp_ring_overrun")
                trace.count("afxdp.frames_leaked", len(done))
                return
            self.umem.completion_ring.produce_batch(done)
            ctx.charge(
                costs.ring_batch_ns + len(done) * costs.ring_op_ns,
                label="comp_push",
            )

    def reap_completions(self, ctx: ExecContext) -> int:
        """Collect transmitted frames back into the pool."""
        costs = DEFAULT_COSTS
        descs = self.umem.completion_ring.consume_batch(
            self.umem.completion_ring.size
        )
        if not descs:
            return 0
        ctx.charge(costs.ring_batch_ns + len(descs) * costs.ring_op_ns,
                   label="comp_pop")
        self.pool.free([addr for addr, _ in descs], ctx, batched=True)
        return len(descs)
