"""umem: the shared packet-buffer memory area.

A umem is a contiguous region carved into fixed-size frames; the kernel
DMAs (zero-copy mode) or copies (copy mode) received packets into frames
whose addresses userspace posted on the **fill ring**, and reports
transmitted frames back on the **completion ring** (§3.1's numbered paths).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.afxdp.rings import DescRing
from repro.net.packet import Packet

FRAME_SIZE = 2048


class Umem:
    def __init__(self, n_frames: int = 4096, frame_size: int = FRAME_SIZE,
                 ring_size: int = 2048) -> None:
        if n_frames <= 0:
            raise ValueError("umem needs frames")
        self.n_frames = n_frames
        self.frame_size = frame_size
        #: Frame contents, by frame address.  A Packet object stands in
        #: for the bytes living at that address.
        self._frames: Dict[int, Optional[Packet]] = {
            i * frame_size: None for i in range(n_frames)
        }
        self.fill_ring = DescRing(ring_size)
        self.completion_ring = DescRing(ring_size)

    def all_addresses(self):
        return list(self._frames.keys())

    def _check(self, addr: int) -> None:
        if addr not in self._frames:
            raise ValueError(f"address {addr:#x} is not a frame boundary")

    def write_frame(self, addr: int, pkt: Packet) -> None:
        self._check(addr)
        if len(pkt) > self.frame_size:
            raise ValueError(
                f"packet ({len(pkt)}B) larger than a frame ({self.frame_size}B)"
            )
        self._frames[addr] = pkt

    def read_frame(self, addr: int) -> Packet:
        self._check(addr)
        pkt = self._frames[addr]
        if pkt is None:
            raise ValueError(f"frame {addr:#x} is empty")
        return pkt

    def clear_frame(self, addr: int) -> None:
        self._check(addr)
        self._frames[addr] = None
