"""Single-producer/single-consumer descriptor rings.

All four AF_XDP rings (fill, completion, rx, tx) are this structure: a
power-of-two array of descriptors with free-running producer/consumer
indexes.  Descriptors here are ``(addr, length)`` pairs; the fill and
completion rings use length 0.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

Desc = Tuple[int, int]


class RingFullError(Exception):
    pass


class DescRing:
    """SPSC descriptor ring with stall accounting.

    ``full_events``/``empty_events`` count the occasions a producer found
    no space or a consumer found nothing queued — the back-pressure
    signals a real AF_XDP deployment watches (``xsk_ring_prod__reserve``
    failures and empty polls) and the numbers ``pmd-perf-show`` style
    tooling reports.
    """

    def __init__(self, size: int) -> None:
        if size <= 0 or size & (size - 1):
            raise ValueError(f"ring size must be a power of two, got {size}")
        self.size = size
        self._slots: List[Optional[Desc]] = [None] * size
        self._prod = 0
        self._cons = 0
        self.full_events = 0
        self.empty_events = 0

    def __len__(self) -> int:
        return self._prod - self._cons

    @property
    def free_space(self) -> int:
        return self.size - len(self)

    def produce(self, desc: Desc) -> None:
        if len(self) >= self.size:
            self.full_events += 1
            raise RingFullError("ring full")
        self._slots[self._prod & (self.size - 1)] = desc
        self._prod += 1

    def produce_batch(self, descs: Sequence[Desc]) -> int:
        """Enqueue as many as fit; returns how many were enqueued."""
        n = min(len(descs), self.free_space)
        if n < len(descs):
            self.full_events += 1
        for desc in descs[:n]:
            self._slots[self._prod & (self.size - 1)] = desc
            self._prod += 1
        return n

    def consume(self) -> Optional[Desc]:
        if self._cons == self._prod:
            self.empty_events += 1
            return None
        desc = self._slots[self._cons & (self.size - 1)]
        self._cons += 1
        return desc

    def consume_batch(self, max_n: int) -> List[Desc]:
        n = min(max_n, len(self))
        if n == 0:
            self.empty_events += 1
            return []
        out = []
        for _ in range(n):
            out.append(self._slots[self._cons & (self.size - 1)])
            self._cons += 1
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DescRing(size={self.size}, queued={len(self)})"
