"""umempool: OVS's userspace buffer manager for umem frames (§3.2 O2/O3).

"The umem regions require synchronization, even if only one thread
processes packets received in a given region, because any thread might
need to send a packet to any umem region."

The pool hands out free frame addresses.  Its two knobs are exactly the
paper's optimizations:

* ``lock_strategy`` — O2: a POSIX mutex can context-switch the caller
  (~5 % CPU observed); a spinlock is <1 %.
* ``batched`` — O3: one lock acquisition per *batch* of frames instead of
  one per frame.

Every acquisition charges the corresponding cost to the calling context,
so Table 2's ablation falls out of real allocator behaviour.
"""

from __future__ import annotations

import enum
from typing import List, Optional

from repro.afxdp.umem import Umem
from repro.sim import trace
from repro.sim.costs import DEFAULT_COSTS
from repro.sim.cpu import CpuCategory, ExecContext
from repro.sim.rng import make_rng


class LockStrategy(enum.Enum):
    MUTEX = "mutex"
    SPINLOCK = "spinlock"


#: An uncontended pthread mutex occasionally falls into the futex slow
#: path (lock handoff, priority boosting); we charge a full context switch
#: once per this many acquisitions — tuned so a mutex-per-packet workload
#: shows the ~5 % pthread_mutex_lock CPU share the paper measured.
MUTEX_FUTEX_PERIOD = 400


class UmemPool:
    def __init__(
        self,
        umem: Umem,
        lock_strategy: LockStrategy = LockStrategy.SPINLOCK,
        batched: bool = True,
    ) -> None:
        self.umem = umem
        self.lock_strategy = lock_strategy
        self.batched = batched
        self._free: List[int] = umem.all_addresses()
        self._rng = make_rng("umempool-futex")
        self.lock_acquisitions = 0
        self.futex_slow_paths = 0

    @property
    def free_count(self) -> int:
        return len(self._free)

    def _lock_cost(self, ctx: ExecContext) -> None:
        costs = DEFAULT_COSTS
        self.lock_acquisitions += 1
        if self.lock_strategy is LockStrategy.SPINLOCK:
            ctx.charge(costs.spinlock_ns, label="spinlock")
            return
        ctx.charge(costs.mutex_ns, label="mutex")
        if self.lock_acquisitions % MUTEX_FUTEX_PERIOD == 0:
            # Futex slow path: syscall + possible context switch.
            self.futex_slow_paths += 1
            trace.count("kernel.ctx_switches")
            with ctx.as_category(CpuCategory.SYSTEM):
                ctx.charge(costs.syscall_base_ns, label="futex")
            ctx.charge(costs.context_switch_ns, label="futex_switch")

    def alloc(self, n: int, ctx: ExecContext,
              batched: Optional[bool] = None) -> List[int]:
        """Take ``n`` free frame addresses (fewer if the pool runs dry).

        ``batched`` overrides the pool's configured locking granularity:
        the transmit buffering path was batch-locked from the start, so
        the XSK passes ``batched=True`` there; O3's change is about the
        per-packet receive/refill path.
        """
        n = min(n, len(self._free))
        if n == 0:
            return []
        if self.batched if batched is None else batched:
            self._lock_cost(ctx)
        else:
            for _ in range(n):
                self._lock_cost(ctx)
        out = self._free[-n:]
        del self._free[-n:]
        return out

    def free(self, addrs: List[int], ctx: ExecContext,
             batched: Optional[bool] = None) -> None:
        if not addrs:
            return
        if self.batched if batched is None else batched:
            self._lock_cost(ctx)
        else:
            for _ in range(len(addrs)):
                self._lock_cost(ctx)
        for addr in addrs:
            self.umem.clear_frame(addr)
        self._free.extend(addrs)
