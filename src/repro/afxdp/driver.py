"""netdev-afxdp: the OVS AF_XDP driver (§3).

One :class:`AfxdpDriver` manages a NIC: per-queue umem + umempool + XSK,
the XDP redirect program, and the receive/transmit bursts the PMD threads
call.  Its options are the paper's optimization knobs:

* O2 ``lock_strategy`` and O3 ``batched_locking`` — forwarded to the pool;
* O4 ``preallocated_metadata`` — dp_packet structures in one contiguous
  array vs mmap-backed allocation;
* O5 ``sw_checksum_on_tx`` — AF_XDP has no checksum offload, so by
  default OVS computes L4 checksums in software on transmit; switching it
  off reproduces the paper's offload *estimate*;
* ``interrupt_mode`` — poll()-driven service instead of busy polling
  (the O1-less configuration of Figure 8a's second bar).

O1 itself (dedicated PMD threads) is a dpif-netdev scheduling decision;
see :mod:`repro.ovs.pmd`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.afxdp.socket import BindMode, XskSocket
from repro.afxdp.umem import Umem
from repro.afxdp.umempool import LockStrategy, UmemPool
from repro.ebpf.programs import steering_program, xsk_redirect_program
from repro.ebpf.xdp import XdpContext
from repro.kernel.nic import PhysicalNic
from repro.net.flow import extract_flow, rss_hash, rxhash_of
from repro.net.packet import Packet
from repro import telemetry
from repro.sim import fastpath, faults, trace
from repro.sim.costs import DEFAULT_COSTS
from repro.sim.cpu import CpuCategory, ExecContext
from repro.telemetry.drops import (
    DropReason,
    XSK_RX_REASONS,
    XSK_TX_REASONS,
)

#: How many dp_packet allocations one mmap covers in the pre-O4 scheme.
MMAP_ALLOC_PERIOD = 512


@dataclass
class AfxdpOptions:
    lock_strategy: LockStrategy = LockStrategy.SPINLOCK
    batched_locking: bool = True
    preallocated_metadata: bool = True
    sw_checksum_on_tx: bool = True
    interrupt_mode: bool = False
    batch_size: int = 32
    ring_size: int = 2048
    n_frames: int = 4096
    #: Force copy mode even on capable hardware (None = auto-detect).
    force_copy_mode: Optional[bool] = None
    #: Steer management TCP (ssh/OpenFlow/OVSDB) to the kernel stack
    #: instead of the XSK (§4's control-plane steering idea).  Empty =
    #: the plain redirect-everything helper.
    mgmt_steering_ports: "tuple[int, ...]" = ()


class AfxdpDriver:
    def __init__(
        self,
        nic: PhysicalNic,
        options: Optional[AfxdpOptions] = None,
    ) -> None:
        self.nic = nic
        self.options = options or AfxdpOptions()
        self.sockets: Dict[int, XskSocket] = {}
        self.program = None
        self._xsk_map = None
        self._alloc_counter = 0
        self.rx_packets = 0
        self.tx_packets = 0
        #: Set when the (injected) verifier rejected the native program
        #: and the port degraded to generic copy mode instead of failing.
        self.verifier_rejected = False
        #: Counters folded in from sockets of previous daemon
        #: generations (teardown or crash), so the conservation ledger
        #: still balances after a restart replaced the live sockets.
        self.retired: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def setup_cost_ns(self, copy_mode: Optional[bool] = None) -> float:
        """Virtual cost of :meth:`setup`: per-queue umem registration +
        page pinning + socket bind (zero-copy restarts the hw queue
        pair), plus one XDP program load/attach.  Used both to charge a
        real ``ctx`` and by the supervisor to schedule the port-rebind
        recovery phase."""
        costs = DEFAULT_COSTS
        opts = self.options
        if copy_mode is None:
            if opts.force_copy_mode is None:
                copy_mode = not self.nic.features.afxdp_zerocopy
            else:
                copy_mode = opts.force_copy_mode
        per_queue = (costs.afxdp_umem_create_ns
                     + opts.n_frames * costs.afxdp_frame_pin_ns
                     + costs.afxdp_socket_bind_ns)
        if not copy_mode:
            per_queue += costs.afxdp_zc_queue_restart_ns
        return self.nic.n_queues * per_queue + costs.xdp_attach_ns

    def teardown_cost_ns(self) -> float:
        """Virtual cost of a *graceful* :meth:`teardown` (a crash pays
        nothing: the kernel reaps the fds for free as the process
        exits)."""
        return len(self.sockets) * DEFAULT_COSTS.afxdp_socket_unbind_ns

    def setup(self, ctx: Optional[ExecContext] = None) -> None:
        """Create per-queue XSKs, load and attach the XDP program.

        With ``ctx`` (the supervisor's control context during recovery)
        the rebind is charged through the cost model; without it the
        work is free setup-time plumbing, exactly as before.
        """
        opts = self.options
        if opts.force_copy_mode is None:
            copy_mode = not self.nic.features.afxdp_zerocopy
        else:
            copy_mode = opts.force_copy_mode
        plan = faults.ACTIVE
        if plan is not None and plan.should_fire("ebpf.verifier_reject"):
            # The verifier rejected the native-mode program at load time
            # (a kernel-version skew OVS really hits): degrade to the
            # generic copy-mode attach instead of failing the port.
            self.verifier_rejected = True
            copy_mode = True
            trace.count("ebpf.verifier_rejected")
        if ctx is not None:
            ctx.charge(self.setup_cost_ns(copy_mode),
                       label="afxdp_rebind")
        bind_mode = BindMode.COPY if copy_mode else BindMode.ZEROCOPY
        if opts.mgmt_steering_ports:
            program, xsk_map = steering_program(
                n_queues=self.nic.n_queues,
                mgmt_ports=opts.mgmt_steering_ports,
            )
        else:
            program, xsk_map = xsk_redirect_program(
                n_queues=self.nic.n_queues)
        self.program = program
        self._xsk_map = xsk_map
        for queue in range(self.nic.n_queues):
            umem = Umem(n_frames=opts.n_frames, ring_size=opts.ring_size)
            pool = UmemPool(
                umem,
                lock_strategy=opts.lock_strategy,
                batched=opts.batched_locking,
            )
            sock = XskSocket(umem, pool, bind_mode=bind_mode,
                             ring_size=opts.ring_size)
            sock.bound_device = self.nic
            sock.bound_queue = queue
            # Prime the fill ring so the kernel can receive immediately.
            addrs = pool.alloc(opts.ring_size // 2, _SETUP_CTX)
            umem.fill_ring.produce_batch([(a, 0) for a in addrs])
            self.sockets[queue] = sock
            self.nic.bind_xsk(queue, sock)
            xsk_map.set_dev(queue, queue + 1)  # non-zero marker
        self.nic.attach_xdp(XdpContext(program))

    def teardown(self, ctx: Optional[ExecContext] = None) -> None:
        """Detach the program and unbind (an OVS restart needs only this —
        no kernel module unload, no reboot).  With ``ctx`` the graceful
        unbind is charged; a crash calls this without one (the kernel
        closes the fds as the process exits, costing the dead process
        nothing)."""
        if ctx is not None:
            ctx.charge(self.teardown_cost_ns(), label="afxdp_unbind")
        self.nic.detach_xdp()
        for queue in list(self.sockets):
            self.nic.unbind_xsk(queue)
        self._retire_socket_counters()
        self.sockets.clear()

    #: Socket counters preserved across restarts, derived from the drop
    #: taxonomy so the ledger and the enum can never drift apart.
    _RETIRED_COUNTERS = ("tx_sent",) + tuple(
        r.counter for r in XSK_RX_REASONS + XSK_TX_REASONS)

    def _retire_socket_counters(self) -> None:
        for sock in self.sockets.values():
            for name in self._RETIRED_COUNTERS:
                self.retired[name] = (self.retired.get(name, 0)
                                      + getattr(sock, name))

    def drop_sockets_on_crash(self) -> "Dict[str, int]":
        """The process died: the kernel closes every XSK fd, which
        unbinds the sockets — but the XDP program stays attached to the
        netdev (its attachment holds a reference), so subsequent
        redirects fail at dispatch and count in
        ``nic.xdp_redirect_failed``.  Frames already delivered into the
        dead process's rx rings (and any produced-but-unkicked tx
        descriptors) are gone with the umem; they are returned as named
        sinks so the packet-conservation ledger balances through the
        crash."""
        rx_sink = DropReason.CRASH_XSK_RX_INFLIGHT
        tx_sink = DropReason.CRASH_XSK_TX_INFLIGHT
        sinks = {rx_sink.value: 0, tx_sink.value: 0}
        for sock in self.sockets.values():
            sinks[rx_sink.value] += len(sock.rx_ring)
            sinks[tx_sink.value] += len(sock.tx_ring)
        for queue in list(self.sockets):
            self.nic.unbind_xsk(queue)
        self._retire_socket_counters()
        self.sockets.clear()
        for reason in (rx_sink, tx_sink):
            telemetry.drop_event(reason, n=sinks[reason.value])
        return {k: v for k, v in sinks.items() if v}

    # ------------------------------------------------------------------
    def rx_burst(self, queue: int, ctx: ExecContext) -> List[Packet]:
        """Receive a burst on a queue (PMD thread context)."""
        rec = trace.ACTIVE
        prof = rec.profiler if rec is not None else None
        if prof is None:
            return self._rx_burst(queue, ctx)
        prof.enter("afxdp.rx")
        try:
            return self._rx_burst(queue, ctx)
        finally:
            prof.exit_()

    def _rx_burst(self, queue: int, ctx: ExecContext) -> List[Packet]:
        costs = DEFAULT_COSTS
        opts = self.options
        sock = self.sockets[queue]
        if opts.interrupt_mode:
            # Blocking service: poll() syscall, then a wakeup when the
            # interrupt fires.  This is what "interrupt" in Figure 8a
            # means.  The sleep/wake cycle costs real CPU (scheduler out
            # and in) as well as latency.
            with ctx.as_category(CpuCategory.SYSTEM):
                ctx.charge(costs.poll_ns, label="poll")
            if len(sock.rx_ring):
                ctx.charge(costs.context_switch_ns, label="irq_resched")
                trace.count("kernel.ctx_switches")
                ctx.wait(costs.irq_entry_ns + costs.thread_wakeup_ns,
                         label="irq_wakeup")
        pkts = sock.user_rx_batch(ctx, batch=opts.batch_size)
        if not pkts:
            return pkts
        for pkt in pkts:
            self._init_metadata(pkt, ctx)
        self.rx_packets += len(pkts)
        return pkts

    def _init_metadata(self, pkt: Packet, ctx: ExecContext) -> None:
        costs = DEFAULT_COSTS
        opts = self.options
        ctx.charge(costs.dp_packet_init_ns, label="dp_packet")
        if not pkt.meta.llc_warm:
            # Zero-copy AF_XDP: userspace is the first to read the DMA'd
            # frame (the XSK-redirect program never touched it).
            ctx.charge(costs.dma_first_touch_ns, label="dma_first_touch")
            pkt.meta.llc_warm = True
        if not opts.preallocated_metadata:
            ctx.charge(costs.dp_packet_malloc_extra_ns, label="dp_malloc")
            self._alloc_counter += 1
            if self._alloc_counter % MMAP_ALLOC_PERIOD == 0:
                with ctx.as_category(CpuCategory.SYSTEM):
                    ctx.charge(costs.mmap_ns, label="mmap")
        # No API exposes the NIC's RSS hash or checksum validation
        # through AF_XDP (§5.5): the hash is recomputed in software, and
        # the checksum's hardware verdict is lost — unless the O5
        # estimate is on, in which case receive "assumes the checksum is
        # correct" (§3.2).
        ctx.charge(costs.software_rxhash_ns, label="sw_rxhash")
        if fastpath.ENABLED:
            pkt.meta.rxhash = rxhash_of(pkt.data)
        else:
            pkt.meta.rxhash = rss_hash(extract_flow(pkt.data).five_tuple())
        pkt.meta.csum_verified = not opts.sw_checksum_on_tx

    def tx_burst(self, queue: int, pkts: List[Packet], ctx: ExecContext) -> int:
        rec = trace.ACTIVE
        prof = rec.profiler if rec is not None else None
        if prof is None:
            return self._tx_burst(queue, pkts, ctx)
        prof.enter("afxdp.tx")
        try:
            return self._tx_burst(queue, pkts, ctx)
        finally:
            prof.exit_()

    def _tx_burst(self, queue: int, pkts: List[Packet],
                  ctx: ExecContext) -> int:
        costs = DEFAULT_COSTS
        opts = self.options
        sock = self.sockets[queue]
        if opts.sw_checksum_on_tx:
            # AF_XDP exposes no checksum offload (§3.2 O5): the driver
            # checksums every outgoing packet in software.
            for pkt in pkts:
                ctx.charge(costs.checksum_cost(len(pkt)), label="sw_csum")
                pkt.meta.csum_partial = False
        else:
            # The O5 estimate: stamp a fixed value, assume correctness.
            for pkt in pkts:
                pkt.meta.csum_partial = False
        sent = sock.user_tx_batch(pkts, ctx)
        sock.reap_completions(ctx)
        self.tx_packets += sent
        return sent


class _SetupCtx:
    """Setup-time work is control plane; don't bill it to a datapath CPU."""

    def charge(self, ns: float, label: str = "", category=None) -> None:
        pass

    def wait(self, ns: float, label: str = "") -> None:
        pass

    def as_category(self, category):
        from contextlib import nullcontext

        return nullcontext()


_SETUP_CTX = _SetupCtx()
