"""Run the full evaluation from the command line.

    python -m repro                 # every table and figure
    python -m repro fig2 table5     # a subset
    python -m repro --trace fig2    # + per-stage virtual-time profile
    python -m repro --profile fig9  # + call tree (perf-report style)
    python -m repro --list

Each experiment prints the same rows/series the paper reports; expect a
few minutes for the full set (fig8/fig9 dominate).  ``--trace`` attaches
a :class:`~repro.sim.trace.TraceRecorder` per experiment and prints the
profile (see :mod:`repro.tools.perf_report`); ``--profile`` also attaches
a :class:`~repro.sim.profile.Profiler` and prints the call tree.
"""

from __future__ import annotations

import sys
import time

EXPERIMENTS = {
    "fig1": ("Figure 1: out-of-tree module churn",
             "repro.experiments.fig1_loc_churn"),
    "fig2": ("Figure 2: single-core forwarding by datapath",
             "repro.experiments.fig2_single_flow"),
    "table2": ("Table 2: AF_XDP optimization ladder",
               "repro.experiments.table2_optimizations"),
    "table3": ("Table 3: NSX production rule set",
               "repro.experiments.table3_ruleset"),
    "fig8": ("Figure 8: TCP throughput (NSX pipeline)",
             "repro.experiments.fig8_tcp_throughput"),
    "fig9": ("Figure 9 + Table 4: forwarding rate and CPU",
             "repro.experiments.fig9_forwarding"),
    "fig10": ("Figure 10: inter-host VM latency",
              "repro.experiments.fig10_latency"),
    "fig11": ("Figure 11: container latency",
              "repro.experiments.fig11_container_latency"),
    "table5": ("Table 5: XDP task complexity",
               "repro.experiments.table5_xdp_cost"),
    "fig12": ("Figure 12: multi-queue scaling",
              "repro.experiments.fig12_multiqueue"),
    "degradation": ("Robustness: degradation under injected faults",
                    "repro.experiments.degradation"),
    "upgrade": ("Robustness: crash-recovery downtime per datapath",
                "repro.experiments.upgrade"),
    "observer-effect": ("Observability: telemetry's throughput cost "
                        "by sampling rate",
                        "repro.experiments.observer_effect"),
    "matrix": ("Performance matrix: lossless-rate sweep "
               "(own flags; see `matrix --help`)",
               "repro.perfmatrix.matrix"),
}


USAGE = """\
usage: python -m repro [--list] [--trace] [--profile] [experiment ...]
       python -m repro matrix [--quick|--full] [--out PATH] [...]

Reproduce the paper's tables and figures.  With no arguments, runs
every experiment.  The ``matrix`` subcommand sweeps the automated
performance matrix (packet size x flows x datapath x topology) and
binary-searches each cell's maximum lossless rate; it takes its own
flags — see ``python -m repro matrix --help``.

options:
  -h, --help     show this message and exit
  -l, --list     list the available experiments
  -t, --trace    run each experiment under a TraceRecorder and print the
                 per-stage virtual-time profile afterwards
  -p, --profile  like --trace, plus a call-tree profiler; prints the
                 perf-report-style tree after each experiment
  --no-jit       run eBPF programs through the interpreter instead of
                 the JIT (same observables, slower wall-clock; equal to
                 EBPF_JIT=0)
  --no-dpjit     run megaflow action chains through the generic datapath
                 walk instead of compiled closures (same observables,
                 slower wall-clock; equal to DP_JIT=0)
"""


def main(argv: "list[str]") -> int:
    if argv and argv[0] == "matrix":
        # The matrix harness owns its argv (grid subsetting, --out, ...);
        # everything after the subcommand is forwarded verbatim.
        from repro.perfmatrix.matrix import main as matrix_main

        return matrix_main(argv[1:])
    if "--help" in argv or "-h" in argv:
        print(USAGE)
        for key, (title, _module) in EXPERIMENTS.items():
            print(f"  {key:8s} {title}")
        return 0
    if "--list" in argv or "-l" in argv:
        for key, (title, _module) in EXPERIMENTS.items():
            print(f"  {key:8s} {title}")
        return 0
    with_profile = "--profile" in argv or "-p" in argv
    with_trace = with_profile or "--trace" in argv or "-t" in argv
    if "--no-jit" in argv:
        from repro.ebpf import jit

        jit.set_enabled(False)
    if "--no-dpjit" in argv:
        from repro.ovs import dpjit

        dpjit.set_enabled(False)
    flags = [a for a in argv if a.startswith("-")]
    unknown_flags = [
        f for f in flags if f not in ("--trace", "-t", "--profile", "-p",
                                      "--list", "-l", "--help", "-h",
                                      "--no-jit", "--no-dpjit")
    ]
    if unknown_flags:
        print(f"unknown option(s): {', '.join(unknown_flags)}",
              file=sys.stderr)
        print(USAGE, file=sys.stderr)
        return 2
    chosen = [a for a in argv if not a.startswith("-")]
    unknown = [a for a in chosen if a not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}",
              file=sys.stderr)
        print(f"known: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    targets = chosen or list(EXPERIMENTS)
    import importlib

    for key in targets:
        title, module_name = EXPERIMENTS[key]
        print("=" * 72)
        print(title)
        print("=" * 72)
        started = time.time()
        module = importlib.import_module(module_name)
        if with_trace:
            from repro.sim import profile, trace
            from repro.tools.perf_report import _call_main, format_report

            if with_profile:
                with profile.profiling() as rec:
                    _call_main(module)
            else:
                with trace.recording() as rec:
                    _call_main(module)
            print()
            print(format_report(
                rec, title=f"virtual-time profile: {key}"))
            if with_profile:
                print()
                print(profile.render_tree(
                    rec.profiler.root, title=f"call tree: {key}",
                    min_share=0.05))
        else:
            from repro.tools.perf_report import _call_main

            _call_main(module)
        print(f"[{key} done in {time.time() - started:.1f}s]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
