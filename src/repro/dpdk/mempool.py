"""rte_mempool: per-core-cached fixed-size buffer pools.

The modelled property is cost: an mbuf alloc/free from the per-core cache
is ~20 ns, with no locking on the fast path — part of why DPDK's
per-packet budget is so small.
"""

from __future__ import annotations

from repro.sim.costs import DEFAULT_COSTS
from repro.sim.cpu import ExecContext


class Mempool:
    def __init__(self, n_mbufs: int = 8192, mbuf_size: int = 2176) -> None:
        if n_mbufs <= 0:
            raise ValueError("mempool needs buffers")
        self.n_mbufs = n_mbufs
        self.mbuf_size = mbuf_size
        self._free = n_mbufs
        self.alloc_failures = 0

    @property
    def free_count(self) -> int:
        return self._free

    def alloc(self, n: int, ctx: ExecContext) -> int:
        """Allocate up to ``n`` mbufs; returns how many were granted."""
        granted = min(n, self._free)
        if granted < n:
            self.alloc_failures += n - granted
        self._free -= granted
        ctx.charge(granted * DEFAULT_COSTS.mbuf_alloc_ns, label="mbuf_alloc")
        return granted

    def free(self, n: int, ctx: ExecContext) -> None:
        if n < 0 or self._free + n > self.n_mbufs:
            raise ValueError("freeing more mbufs than were allocated")
        self._free += n
        ctx.charge(n * DEFAULT_COSTS.mbuf_free_ns, label="mbuf_free")
