"""A DPDK-like kernel-bypass substrate.

Binding a NIC to DPDK removes it from kernel control: the device vanishes
from rtnetlink, so every tool in the paper's Table 1 stops working on it
(§2.2.1's compatibility complaint).  In exchange, PMD threads poll the
hardware rings directly from userspace — no interrupts, no syscalls, no
skbs — and hardware offloads (RSS hash, checksum, TSO) are available to
the application, which is exactly the cost structure that makes DPDK fast
in Figures 9, 10 and 12.
"""

from repro.dpdk.ethdev import DpdkEthDev, bind_device, unbind_device
from repro.dpdk.mempool import Mempool
from repro.dpdk.af_packet import AfPacketPort

__all__ = [
    "DpdkEthDev",
    "bind_device",
    "unbind_device",
    "Mempool",
    "AfPacketPort",
]
