"""DPDK's AF_PACKET driver: how OVS-DPDK reaches container veths.

Figure 11's experiment connects DPDK to containers "with the DPDK
AF_PACKET driver": every burst is a syscall and every packet a copy
through the kernel — the extra user/kernel transitions that make DPDK's
container latency 81/136/241 µs versus the kernel's ~15 µs (§5.3).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List

from repro.kernel.netdev import NetDevice
from repro.net.packet import Packet
from repro.sim.costs import DEFAULT_COSTS
from repro.sim.cpu import CpuCategory, ExecContext


class AfPacketPort:
    def __init__(self, device: NetDevice) -> None:
        self.device = device
        self._rx: Deque[Packet] = deque()
        device.set_rx_handler(lambda pkt, ctx: self._rx.append(pkt))
        self.rx_packets = 0
        self.tx_packets = 0

    def rx_burst(self, ctx: ExecContext, batch: int = 32) -> List[Packet]:
        costs = DEFAULT_COSTS
        if not self._rx:
            # Readiness is learned from poll(); an empty ring costs
            # nothing extra per PMD iteration.
            return []
        with ctx.as_category(CpuCategory.SYSTEM):
            ctx.charge(costs.recvfrom_ns, label="af_packet_recv")
            n = min(batch, len(self._rx))
            pkts = [self._rx.popleft() for _ in range(n)]
            for pkt in pkts:
                ctx.charge(costs.copy_cost(len(pkt)), label="af_packet_copy")
                ctx.charge(costs.skb_free_ns, label="skb")
        self.rx_packets += len(pkts)
        return pkts

    def tx_burst(self, pkts: List[Packet], ctx: ExecContext) -> int:
        costs = DEFAULT_COSTS
        sent = 0
        with ctx.as_category(CpuCategory.SYSTEM):
            ctx.charge(costs.sendto_ns, label="af_packet_send")
            for pkt in pkts:
                ctx.charge(costs.copy_cost(len(pkt)), label="af_packet_copy")
                ctx.charge(costs.skb_alloc_ns, label="skb")
                if self.device.transmit(pkt, ctx):
                    sent += 1
        self.tx_packets += sent
        return sent

    def pending(self) -> int:
        return len(self._rx)
