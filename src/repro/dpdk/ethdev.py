"""rte_ethdev: userspace poll-mode drive of a bound NIC.

:func:`bind_device` detaches the NIC from the kernel (dpdk-devbind with
vfio-pci): the device disappears from the namespace registry and thus from
``ip``/``tcpdump``/... (Table 1).  The returned :class:`DpdkEthDev` polls
the hardware rings from plain userspace context with mbuf costs and full
hardware offload visibility.
"""

from __future__ import annotations

from typing import List, Optional

from repro.dpdk.mempool import Mempool
from repro.kernel.namespace import NetNamespace
from repro.kernel.nic import PhysicalNic
from repro.net.packet import Packet
from repro.sim.costs import DEFAULT_COSTS
from repro.sim.cpu import ExecContext


class DpdkEthDev:
    def __init__(self, nic: PhysicalNic, mempool: Optional[Mempool] = None) -> None:
        self.nic = nic
        self.mempool = mempool or Mempool()
        self.rx_packets = 0
        self.tx_packets = 0
        self._outstanding_mbufs = 0

    @property
    def n_queues(self) -> int:
        return self.nic.n_queues

    def rx_burst(self, queue: int, ctx: ExecContext, batch: int = 32) -> List[Packet]:
        """Poll one hardware rx ring — pure userspace, no syscall.

        Hardware metadata (RSS hash, checksum validity) is available in
        the rx descriptor, so no software rxhash is needed (§5.5's DPDK
        advantage).
        """
        costs = DEFAULT_COSTS
        ring = self.nic.rx_rings[queue]
        n = min(batch, len(ring))
        if n == 0:
            return []
        granted = self.mempool.alloc(n, ctx)
        self._outstanding_mbufs += granted
        pkts = []
        for _ in range(granted):
            pkt = ring.popleft()
            ctx.charge(costs.nic_rx_ns, label="rx_desc")
            if not pkt.meta.llc_warm:
                ctx.charge(costs.dma_first_touch_ns, label="dma_first_touch")
                pkt.meta.llc_warm = True
            pkts.append(pkt)
        self.rx_packets += len(pkts)
        return pkts

    def tx_burst(self, queue: int, pkts: List[Packet], ctx: ExecContext) -> int:
        """Write tx descriptors and ring the doorbell — again no syscall."""
        sent = 0
        for pkt in pkts:
            # The descriptor cost is charged inside PhysicalNic.transmit;
            # hardware checksum/TSO offloads apply exactly as for the
            # kernel driver (feature flags on the NIC).
            if self.nic.transmit(pkt, ctx):
                sent += 1
        # Return the mbufs these packets rode in on (packets injected from
        # elsewhere, e.g. a vhost port, carry their own buffers).
        reclaim = min(len(pkts), self._outstanding_mbufs)
        self.mempool.free(reclaim, ctx)
        self._outstanding_mbufs -= reclaim
        self.tx_packets += sent
        return sent

    def pending(self, queue: Optional[int] = None) -> int:
        return self.nic.pending(queue)


def bind_device(namespace: NetNamespace, name: str) -> DpdkEthDev:
    """dpdk-devbind: move a NIC from the kernel driver to vfio-pci."""
    device = namespace.device(name)
    if not isinstance(device, PhysicalNic):
        raise ValueError(f"{name} is not a physical NIC")
    namespace.unregister(name)
    device.set_rx_handler(None)
    device.detach_xdp()
    return DpdkEthDev(device)


def unbind_device(namespace: NetNamespace, ethdev: DpdkEthDev) -> PhysicalNic:
    """Return the NIC to the kernel driver (and to Table 1's tools)."""
    namespace.register(ethdev.nic)
    return ethdev.nic
