import pytest

from repro.hosts.container import Container
from repro.hosts.host import Host
from repro.hosts.testbed import Testbed
from repro.hosts.vm import VirtualMachine
from repro.kernel.stack import TcpState
from repro.net.addresses import ip_to_int
from repro.ovs.emc import ExactMatchCache
from repro.ovs.match import Match
from repro.ovs.ofactions import OutputAction
from repro.ovs.openflow import OpenFlowConnection
from repro.ovs.pmd import PmdThread
from repro.sim.cpu import CpuCategory


class TestHost:
    def test_add_nic_registers_and_ups(self):
        host = Host("h1", n_cpus=4)
        nic = host.add_nic("ens1", n_queues=2)
        assert host.kernel.init_ns.has_device("ens1")
        assert nic.up
        assert nic.n_queues == 2

    def test_install_ovs_once(self):
        host = Host("h1")
        host.install_ovs("netdev")
        with pytest.raises(ValueError):
            host.install_ovs("netdev")

    def test_ctx_categories(self):
        host = Host("h1")
        host.user_ctx(0).charge(10)
        host.guest_ctx(1).charge(20)
        assert host.cpu.busy_ns(category=CpuCategory.USER) == 10
        assert host.cpu.busy_ns(category=CpuCategory.GUEST) == 20


class TestTestbed:
    def test_wiring(self):
        tb = Testbed(link_gbps=25, dual_port=True)
        assert len(tb.wires) == 2
        assert tb.a.nics["ens1"].wire_peer is tb.b.nics["ens1"]

    def test_underlay_config(self):
        tb = Testbed()
        tb.configure_underlay()
        assert tb.a.kernel.init_ns.is_local_ip(ip_to_int("192.168.1.1"))
        assert tb.a.kernel.init_ns.neighbors.lookup(
            ip_to_int("192.168.1.2")) is not None

    def test_line_rate(self):
        tb = Testbed(link_gbps=10)
        assert tb.line_rate_mpps(64) == pytest.approx(14.88, abs=0.01)


class TestContainer:
    def test_container_namespace_and_veth(self):
        host = Host("h1")
        c = Container(host, "c1", "172.17.0.2")
        assert host.kernel.namespace("c1") is c.ns
        assert host.kernel.init_ns.has_device("veth-c1")
        assert c.ns.has_device("eth0")
        assert c.ns.is_local_ip(ip_to_int("172.17.0.2"))

    def test_container_to_container_through_kernel_ovs(self):
        """§3.4's intra-host container case on the kernel datapath."""
        host = Host("h1")
        c1 = Container(host, "c1", "172.17.0.2")
        c2 = Container(host, "c2", "172.17.0.3")
        vs = host.install_ovs("system")
        vs.add_bridge("br0")
        p1 = vs.add_system_port("br0", c1.outside)
        p2 = vs.add_system_port("br0", c2.outside)
        of = OpenFlowConnection(vs.bridge("br0"))
        of.add_flow(0, 10, Match(in_port=p1.ofport), [OutputAction(c2.outside.name)])
        of.add_flow(0, 10, Match(in_port=p2.ofport), [OutputAction(c1.outside.name)])

        ctx = host.user_ctx(0)
        server = c2.stack.udp_socket(ip="172.17.0.3", port=7777)
        client = c1.stack.udp_socket(port=5555)
        c1.stack.udp_send(client, "172.17.0.3", 7777, b"hello", ctx)
        host.pump()
        got = server.recv()
        assert got is not None
        assert got[0] == b"hello"


class TestVmTap:
    def test_vm_tap_attach_reaches_host_kernel(self):
        host = Host("h1")
        vm = VirtualMachine(host, "vm1", "10.0.0.5", vcpu_core=2)
        tap = vm.attach_tap(qemu_core=3)
        # Attach the host side of the tap to the host stack to complete a
        # simple VM<->host path (no OVS needed for this test).
        host.kernel.init_ns.stack.attach(tap)
        host.kernel.init_ns.add_address(tap.name, "10.0.0.1", 24)

        ctx = vm.ctx
        server = host.kernel.init_ns.stack.udp_socket(ip="10.0.0.1", port=99)
        client = vm.kernel.init_ns.stack.udp_socket(port=44)
        vm.kernel.init_ns.stack.udp_send(client, "10.0.0.1", 99, b"hi", ctx)
        host.pump()
        assert server.recv() is not None
        # The QEMU shuttle paid SYSTEM time (tap syscalls).
        assert host.cpu.busy_ns(category=CpuCategory.SYSTEM) > 0
        # The guest kernel work was billed as GUEST time.
        assert host.cpu.busy_ns(category=CpuCategory.GUEST) > 0

    def test_cannot_attach_twice(self):
        host = Host("h1")
        vm = VirtualMachine(host, "vm1", "10.0.0.5", vcpu_core=0)
        vm.attach_vhostuser()
        with pytest.raises(ValueError):
            vm.attach_tap(qemu_core=1)


class TestVmVhostuser:
    def test_vm_to_vm_intra_host_over_userspace_ovs(self):
        """Figure 8b's configuration: two vhostuser VMs on one bridge."""
        host = Host("h1")
        vm1 = VirtualMachine(host, "vm1", "10.0.0.5", vcpu_core=2)
        vm2 = VirtualMachine(host, "vm2", "10.0.0.6", vcpu_core=3)
        vs = host.install_ovs("netdev")
        vs.add_bridge("br0")
        vp1 = vs.add_vhostuser_port("br0", vm1.attach_vhostuser())
        vp2 = vs.add_vhostuser_port("br0", vm2.attach_vhostuser())
        of = OpenFlowConnection(vs.bridge("br0"))
        of.add_flow(0, 10, Match(in_port=vp1.ofport),
                    [OutputAction(f"vhost-{vm2.name}")])
        of.add_flow(0, 10, Match(in_port=vp2.ofport),
                    [OutputAction(f"vhost-{vm1.name}")])
        pmd = PmdThread(vs.dpif_netdev, host.cpu, core=1)
        pmd.add_rxq(vs.dpif_netdev.ports[vp1.dp_port_no], 0)
        pmd.add_rxq(vs.dpif_netdev.ports[vp2.dp_port_no], 0)
        host.pumpables.append(lambda: pmd.run_iteration())

        ctx2 = vm2.ctx
        server = vm2.kernel.init_ns.stack.tcp_listen("10.0.0.6", 5001)
        client = vm1.kernel.init_ns.stack.tcp_connect(
            "10.0.0.5", "10.0.0.6", 5001, vm1.ctx)
        host.pump()
        assert client.state is TcpState.ESTABLISHED
        server_sock = server.accept_queue.popleft()
        vm1.kernel.init_ns.stack.tcp_send(client, b"x" * 20_000, vm1.ctx,
                                          tso=True)
        host.pump()
        assert server_sock.bytes_received == 20_000
        # vhostuser: zero SYSTEM time on the data path.
        assert host.cpu.busy_ns(category=CpuCategory.SYSTEM) == 0
