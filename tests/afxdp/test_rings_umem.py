import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.afxdp.rings import DescRing, RingFullError
from repro.afxdp.umem import Umem
from repro.net.addresses import MacAddress
from repro.net.builder import make_udp_packet

PKT = make_udp_packet(MacAddress.local(1), MacAddress.local(2),
                      "10.0.0.1", "10.0.0.2")


class TestDescRing:
    def test_power_of_two_enforced(self):
        with pytest.raises(ValueError):
            DescRing(100)
        with pytest.raises(ValueError):
            DescRing(0)

    def test_fifo_order(self):
        r = DescRing(8)
        for i in range(5):
            r.produce((i, 0))
        assert [r.consume()[0] for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_empty_consume_none(self):
        assert DescRing(4).consume() is None

    def test_full_raises(self):
        r = DescRing(2)
        r.produce((1, 0))
        r.produce((2, 0))
        with pytest.raises(RingFullError):
            r.produce((3, 0))

    def test_batch_produce_partial(self):
        r = DescRing(4)
        n = r.produce_batch([(i, 0) for i in range(10)])
        assert n == 4
        assert len(r) == 4

    def test_batch_consume(self):
        r = DescRing(8)
        r.produce_batch([(i, 0) for i in range(6)])
        got = r.consume_batch(4)
        assert [d[0] for d in got] == [0, 1, 2, 3]
        assert len(r) == 2

    def test_wraparound(self):
        r = DescRing(4)
        for round_no in range(10):
            r.produce_batch([(round_no * 4 + i, 0) for i in range(4)])
            got = r.consume_batch(4)
            assert len(got) == 4
        assert len(r) == 0

    @given(st.lists(st.integers(0, 1000), max_size=64))
    def test_fifo_property(self, addrs):
        r = DescRing(64)
        n = r.produce_batch([(a, 0) for a in addrs])
        out = [d[0] for d in r.consume_batch(64)]
        assert out == addrs[:n]


class TestUmem:
    def test_frame_addresses_aligned(self):
        u = Umem(n_frames=4, frame_size=2048)
        assert u.all_addresses() == [0, 2048, 4096, 6144]

    def test_write_read_clear(self):
        u = Umem(n_frames=2)
        u.write_frame(2048, PKT)
        assert u.read_frame(2048) is PKT
        u.clear_frame(2048)
        with pytest.raises(ValueError, match="empty"):
            u.read_frame(2048)

    def test_unaligned_address_rejected(self):
        u = Umem(n_frames=2)
        with pytest.raises(ValueError, match="frame boundary"):
            u.write_frame(100, PKT)

    def test_oversized_packet_rejected(self):
        u = Umem(n_frames=1, frame_size=32)
        with pytest.raises(ValueError, match="larger than a frame"):
            u.write_frame(0, PKT)

    def test_needs_frames(self):
        with pytest.raises(ValueError):
            Umem(n_frames=0)
