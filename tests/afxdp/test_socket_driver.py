import pytest

from repro.afxdp.driver import AfxdpDriver, AfxdpOptions
from repro.afxdp.socket import BindMode, XskSocket
from repro.afxdp.umem import Umem
from repro.afxdp.umempool import UmemPool
from repro.kernel.netdev import NetDevice, Wire
from repro.kernel.nic import NicFeatures, PhysicalNic
from repro.net.addresses import MacAddress
from repro.net.builder import make_udp_packet
from repro.sim.costs import DEFAULT_COSTS
from repro.sim.cpu import CpuCategory, CpuModel, ExecContext


def mac(i):
    return MacAddress.local(i)


PKT = make_udp_packet(mac(1), mac(2), "10.0.0.1", "10.0.0.2", frame_len=64)


@pytest.fixture
def cpu():
    return CpuModel(4)


@pytest.fixture
def softirq(cpu):
    return ExecContext(cpu, 0, CpuCategory.SOFTIRQ)


@pytest.fixture
def pmd(cpu):
    return ExecContext(cpu, 1, CpuCategory.USER)


def _socket(bind_mode=BindMode.ZEROCOPY, prime=64):
    umem = Umem(n_frames=256, ring_size=256)
    pool = UmemPool(umem)
    sock = XskSocket(umem, pool, bind_mode=bind_mode, ring_size=256)
    if prime:
        addrs = pool.alloc(prime, _null_ctx())
        umem.fill_ring.produce_batch([(a, 0) for a in addrs])
    return sock


def _null_ctx():
    return ExecContext(CpuModel(1), 0, CpuCategory.USER)


class TestXskSocket:
    def test_kernel_rx_to_user_rx(self, softirq, pmd):
        sock = _socket()
        assert sock.kernel_rx(PKT, softirq)
        pkts = sock.user_rx_batch(pmd)
        assert len(pkts) == 1
        assert pkts[0].data == PKT.data

    def test_rx_without_fill_descriptors_drops(self, softirq):
        sock = _socket(prime=0)
        assert not sock.kernel_rx(PKT, softirq)
        assert sock.rx_dropped_no_fill == 1

    def test_user_rx_refills_fill_ring(self, softirq, pmd):
        sock = _socket(prime=4)
        for _ in range(4):
            assert sock.kernel_rx(PKT, softirq)
        assert len(sock.umem.fill_ring) == 0
        sock.user_rx_batch(pmd)
        assert len(sock.umem.fill_ring) == 4  # recycled

    def test_long_run_does_not_exhaust_frames(self, softirq, pmd):
        sock = _socket(prime=64)
        for _ in range(50):
            for _ in range(8):
                assert sock.kernel_rx(PKT, softirq)
            assert len(sock.user_rx_batch(pmd, batch=8)) == 8

    def test_copy_mode_charges_copy(self, cpu, softirq):
        zc = _socket(BindMode.ZEROCOPY)
        zc.kernel_rx(PKT, softirq)
        zerocopy_cost = cpu.busy_ns()
        cpu.reset()
        cp = _socket(BindMode.COPY)
        cp.kernel_rx(PKT, softirq)
        copy_cost = cpu.busy_ns()
        assert copy_cost >= zerocopy_cost + DEFAULT_COSTS.afxdp_copy_mode_ns

    def test_tx_transmits_via_bound_device(self, pmd):
        sock = _socket()
        dev = NetDevice("out0", mac(9))
        dev.set_up()
        sent = []
        dev._transmit = lambda pkt, ctx: (sent.append(pkt), True)[1]
        sock.bound_device = dev
        assert sock.user_tx_batch([PKT, PKT], pmd) == 2
        assert len(sent) == 2
        assert sock.tx_sent == 2

    def test_tx_kick_charges_syscall_as_system(self, cpu, pmd):
        sock = _socket()
        sock.user_tx_batch([PKT], pmd)
        assert cpu.busy_ns(category=CpuCategory.SYSTEM) >= DEFAULT_COSTS.syscall_base_ns

    def test_completions_recycle_frames(self, pmd):
        sock = _socket()
        free_before = sock.pool.free_count
        sock.user_tx_batch([PKT] * 8, pmd)
        assert sock.pool.free_count == free_before - 8
        assert sock.reap_completions(pmd) == 8
        assert sock.pool.free_count == free_before


def _wired_nic(n_queues=1, **features):
    nic = PhysicalNic("mlx0", mac(10), n_queues=n_queues,
                      features=NicFeatures(**features))
    nic.ifindex = 1
    nic.set_up()
    peer = NetDevice("peer0", mac(11))
    peer.set_up()
    peer.set_rx_handler(lambda pkt, ctx: None)
    Wire(nic, peer, gbps=25)
    return nic, peer


class TestAfxdpDriver:
    def test_setup_attaches_program_and_sockets(self):
        nic, _peer = _wired_nic(n_queues=2)
        driver = AfxdpDriver(nic)
        driver.setup()
        assert nic.xdp_program_for(0) is not None
        assert set(driver.sockets) == {0, 1}
        assert nic.xsk_sockets[0] is driver.sockets[0]

    def test_zero_copy_auto_detected(self):
        nic, _ = _wired_nic(afxdp_zerocopy=True)
        driver = AfxdpDriver(nic)
        driver.setup()
        assert driver.sockets[0].bind_mode is BindMode.ZEROCOPY

    def test_copy_fallback_without_driver_support(self):
        nic, _ = _wired_nic(afxdp_zerocopy=False)
        driver = AfxdpDriver(nic)
        driver.setup()
        assert driver.sockets[0].bind_mode is BindMode.COPY

    def test_end_to_end_wire_to_userspace(self, softirq, pmd):
        nic, _ = _wired_nic()
        driver = AfxdpDriver(nic)
        driver.setup()
        # A frame arrives from the wire, the XDP program redirects it to
        # the XSK, and the PMD thread picks it up.
        assert nic.host_receive(PKT)
        nic.service_queue(0, softirq)
        pkts = driver.rx_burst(0, pmd)
        assert len(pkts) == 1
        assert pkts[0].meta.rxhash is not None  # computed in software
        assert driver.rx_packets == 1

    def test_rx_charges_sw_rxhash(self, cpu, softirq, pmd):
        nic, _ = _wired_nic()
        driver = AfxdpDriver(nic)
        driver.setup()
        nic.host_receive(PKT)
        nic.service_queue(0, softirq)
        cpu.reset()
        driver.rx_burst(0, pmd)
        assert cpu.busy_ns() >= DEFAULT_COSTS.software_rxhash_ns

    def test_tx_checksum_software_by_default(self, cpu, pmd):
        nic, peer = _wired_nic()
        driver = AfxdpDriver(nic)
        driver.setup()
        cpu.reset()
        driver.tx_burst(0, [PKT.clone()], pmd)
        labels_cost = cpu.busy_ns()
        cpu.reset()
        driver.options.sw_checksum_on_tx = False
        driver.tx_burst(0, [PKT.clone()], pmd)
        assert labels_cost - cpu.busy_ns() == pytest.approx(
            DEFAULT_COSTS.checksum_cost(len(PKT)))

    def test_interrupt_mode_adds_latency_not_throughput_cpu(self, cpu, softirq, pmd):
        nic, _ = _wired_nic()
        driver = AfxdpDriver(nic, AfxdpOptions(interrupt_mode=True))
        driver.setup()
        nic.host_receive(PKT)
        nic.service_queue(0, softirq)
        from repro.sim.cpu import LatencyTrace

        trace = LatencyTrace()
        with pmd.tracing(trace):
            driver.rx_burst(0, pmd)
        assert trace.components.get("irq_wakeup", 0) > 0

    def test_teardown_detaches(self):
        nic, _ = _wired_nic()
        driver = AfxdpDriver(nic)
        driver.setup()
        driver.teardown()
        assert nic.xdp_program_for(0) is None
        assert nic.xsk_sockets == {}

    def test_metadata_prealloc_cheaper(self, softirq):
        def run_cost(prealloc):
            cpu = CpuModel(2)
            s = ExecContext(cpu, 0, CpuCategory.SOFTIRQ)
            p = ExecContext(cpu, 1, CpuCategory.USER)
            nic, _ = _wired_nic()
            driver = AfxdpDriver(
                nic, AfxdpOptions(preallocated_metadata=prealloc))
            driver.setup()
            for _ in range(300):
                nic.host_receive(PKT)
            while nic.pending():
                nic.service_queue(0, s, budget=32)
                driver.rx_burst(0, p)
            return cpu.busy_ns(category=CpuCategory.USER) + cpu.busy_ns(
                category=CpuCategory.SYSTEM)

        assert run_cost(prealloc=False) > run_cost(prealloc=True)
