import pytest

from repro.afxdp.umem import Umem
from repro.afxdp.umempool import MUTEX_FUTEX_PERIOD, LockStrategy, UmemPool
from repro.sim.costs import DEFAULT_COSTS
from repro.sim.cpu import CpuCategory, CpuModel, ExecContext


@pytest.fixture
def ctx():
    return ExecContext(CpuModel(1), 0, CpuCategory.USER)


def _pool(**kwargs):
    return UmemPool(Umem(n_frames=128), **kwargs)


def test_alloc_free_roundtrip(ctx):
    pool = _pool()
    addrs = pool.alloc(10, ctx)
    assert len(addrs) == 10
    assert pool.free_count == 118
    pool.free(addrs, ctx)
    assert pool.free_count == 128


def test_alloc_capped_at_free(ctx):
    pool = _pool()
    assert len(pool.alloc(1000, ctx)) == 128
    assert pool.alloc(1, ctx) == []


def test_free_clears_frames(ctx):
    from repro.net.addresses import MacAddress
    from repro.net.builder import make_udp_packet

    pool = _pool()
    [addr] = pool.alloc(1, ctx)
    pool.umem.write_frame(addr, make_udp_packet(
        MacAddress.local(1), MacAddress.local(2), "10.0.0.1", "10.0.0.2"))
    pool.free([addr], ctx)
    with pytest.raises(ValueError):
        pool.umem.read_frame(addr)


def test_batched_locking_one_lock_per_batch(ctx):
    pool = _pool(batched=True)
    pool.alloc(32, ctx)
    assert pool.lock_acquisitions == 1


def test_unbatched_locking_one_lock_per_frame(ctx):
    pool = _pool(batched=False)
    pool.alloc(32, ctx)
    assert pool.lock_acquisitions == 32


def test_spinlock_cheaper_than_mutex():
    cpu_spin = CpuModel(1)
    ctx_spin = ExecContext(cpu_spin, 0, CpuCategory.USER)
    spin = _pool(lock_strategy=LockStrategy.SPINLOCK, batched=False)
    for _ in range(100):
        spin.free(spin.alloc(1, ctx_spin), ctx_spin)

    cpu_mutex = CpuModel(1)
    ctx_mutex = ExecContext(cpu_mutex, 0, CpuCategory.USER)
    mutex = _pool(lock_strategy=LockStrategy.MUTEX, batched=False)
    for _ in range(100):
        mutex.free(mutex.alloc(1, ctx_mutex), ctx_mutex)

    assert cpu_mutex.busy_ns() > 2 * cpu_spin.busy_ns()


def test_mutex_hits_futex_slow_path(ctx):
    pool = _pool(lock_strategy=LockStrategy.MUTEX, batched=False)
    for _ in range(MUTEX_FUTEX_PERIOD):
        pool.free(pool.alloc(1, ctx), ctx)
    assert pool.futex_slow_paths >= 1


def test_spinlock_never_futexes(ctx):
    pool = _pool(lock_strategy=LockStrategy.SPINLOCK, batched=False)
    for _ in range(MUTEX_FUTEX_PERIOD):
        pool.free(pool.alloc(1, ctx), ctx)
    assert pool.futex_slow_paths == 0


def test_empty_free_is_noop(ctx):
    pool = _pool()
    pool.free([], ctx)
    assert pool.lock_acquisitions == 0
