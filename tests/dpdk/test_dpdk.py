import pytest

from repro.dpdk.af_packet import AfPacketPort
from repro.dpdk.ethdev import bind_device, unbind_device
from repro.dpdk.mempool import Mempool
from repro.kernel.namespace import NetNamespace
from repro.kernel.netdev import NetDevice, Wire
from repro.kernel.nic import PhysicalNic
from repro.net.addresses import MacAddress
from repro.net.builder import make_udp_packet
from repro.sim.cpu import CpuCategory, CpuModel, ExecContext


def mac(i):
    return MacAddress.local(i)


PKT = make_udp_packet(mac(1), mac(2), "10.0.0.1", "10.0.0.2", frame_len=64)


@pytest.fixture
def cpu():
    return CpuModel(2)


@pytest.fixture
def pmd(cpu):
    return ExecContext(cpu, 0, CpuCategory.USER)


@pytest.fixture
def world():
    ns = NetNamespace("host")
    nic = PhysicalNic("ens1", mac(10), n_queues=2)
    ns.register(nic)
    nic.set_up()
    peer = NetDevice("peer", mac(11))
    peer.set_up()
    peer.set_rx_handler(lambda pkt, ctx: None)
    Wire(nic, peer, gbps=25)
    return ns, nic, peer


class TestMempool:
    def test_alloc_free(self, pmd):
        pool = Mempool(n_mbufs=4)
        assert pool.alloc(3, pmd) == 3
        assert pool.free_count == 1
        pool.free(3, pmd)
        assert pool.free_count == 4

    def test_exhaustion_records_failures(self, pmd):
        pool = Mempool(n_mbufs=2)
        assert pool.alloc(5, pmd) == 2
        assert pool.alloc_failures == 3

    def test_overfree_rejected(self, pmd):
        pool = Mempool(n_mbufs=2)
        with pytest.raises(ValueError):
            pool.free(1, pmd)

    def test_needs_buffers(self):
        with pytest.raises(ValueError):
            Mempool(0)


class TestBinding:
    def test_bind_removes_from_kernel(self, world):
        ns, nic, _peer = world
        eth = bind_device(ns, "ens1")
        assert not ns.has_device("ens1")  # ip link no longer sees it
        assert eth.nic is nic

    def test_bind_requires_physical_nic(self, world):
        ns, _nic, _peer = world
        ns.register(NetDevice("dummy0", mac(50)))
        with pytest.raises(ValueError):
            bind_device(ns, "dummy0")

    def test_unbind_restores_kernel_control(self, world):
        ns, _nic, _peer = world
        eth = bind_device(ns, "ens1")
        unbind_device(ns, eth)
        assert ns.has_device("ens1")


class TestDpdkEthDev:
    def test_rx_polls_hardware_ring(self, world, pmd):
        ns, nic, _peer = world
        eth = bind_device(ns, "ens1")
        nic.host_receive(PKT)
        queue = nic.select_queue(PKT)
        pkts = eth.rx_burst(queue, pmd)
        assert len(pkts) == 1
        assert eth.rx_packets == 1

    def test_rx_keeps_hardware_metadata(self, world, pmd):
        ns, nic, _peer = world
        eth = bind_device(ns, "ens1")
        nic.host_receive(PKT)
        queue = nic.select_queue(PKT)
        [pkt] = eth.rx_burst(queue, pmd)
        assert pkt.meta.rxhash is not None  # hw hash, no sw cost
        assert pkt.meta.csum_verified

    def test_no_system_time_anywhere(self, world, cpu, pmd):
        ns, nic, _peer = world
        eth = bind_device(ns, "ens1")
        nic.host_receive(PKT)
        queue = nic.select_queue(PKT)
        pkts = eth.rx_burst(queue, pmd)
        eth.tx_burst(queue, pkts, pmd)
        assert cpu.busy_ns(category=CpuCategory.SYSTEM) == 0
        assert cpu.busy_ns(category=CpuCategory.SOFTIRQ) == 0

    def test_tx_reaches_wire(self, world, pmd):
        ns, nic, peer = world
        got = []
        peer.set_rx_handler(lambda pkt, ctx: got.append(pkt))
        eth = bind_device(ns, "ens1")
        assert eth.tx_burst(0, [PKT], pmd) == 1
        assert len(got) == 1

    def test_empty_rx_burst(self, world, pmd):
        ns, _nic, _peer = world
        eth = bind_device(ns, "ens1")
        assert eth.rx_burst(0, pmd) == []


class TestAfPacket:
    def test_rx_tx_through_kernel(self, cpu, pmd):
        dev = NetDevice("veth0", mac(20))
        dev.set_up()
        port = AfPacketPort(dev)
        dev.deliver(PKT, pmd)
        pkts = port.rx_burst(pmd)
        assert len(pkts) == 1
        sent = []
        dev._transmit = lambda pkt, c: (sent.append(pkt), True)[1]
        port.tx_burst(pkts, pmd)
        assert len(sent) == 1
        # The defining property: syscalls both ways (Figure 11's DPDK bar).
        assert cpu.busy_ns(category=CpuCategory.SYSTEM) > 0
