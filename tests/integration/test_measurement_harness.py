"""The measurement harness itself: reduce_run and SMT arithmetic."""

import pytest

from repro.experiments.common import CpuSnapshot, reduce_run
from repro.sim.cpu import CpuCategory, CpuModel, ExecContext
from repro.sim.stats import SMT_SIBLING_EFFICIENCY, smt_effective_lanes


class TestSmtLanes:
    def test_one_lane(self):
        assert smt_effective_lanes(1, 16) == 1.0

    def test_up_to_physical_cores_linear(self):
        assert smt_effective_lanes(8, 16) == 8.0

    def test_all_hyperthreads(self):
        # 16 HT on 8 physical cores: every core paired.
        expected = 8 * 2 * SMT_SIBLING_EFFICIENCY
        assert smt_effective_lanes(16, 16) == pytest.approx(expected)

    def test_partial_pairing(self):
        # 10 busy HTs on 8 cores: 6 solo + 2 paired cores.
        expected = 6 + 2 * 2 * SMT_SIBLING_EFFICIENCY
        assert smt_effective_lanes(10, 16) == pytest.approx(expected)

    def test_bounds(self):
        with pytest.raises(ValueError):
            smt_effective_lanes(17, 16)
        with pytest.raises(ValueError):
            smt_effective_lanes(-1, 16)


class TestReduceRun:
    def test_single_lane_rate(self):
        cpu = CpuModel(4)
        before = CpuSnapshot.take(cpu)
        ctx = ExecContext(cpu, 0, CpuCategory.USER)
        ctx.charge(100_000)  # 100 us for 1000 packets = 10 Mpps
        m = reduce_run(cpu, before, 1_000)
        assert m.mpps == pytest.approx(10.0)
        assert m.ns_per_packet == pytest.approx(100.0)
        assert m.n_busy_lanes == 1
        assert m.cpu_util["user"] == pytest.approx(1.0)

    def test_pipeline_bottleneck(self):
        cpu = CpuModel(4)
        before = CpuSnapshot.take(cpu)
        ExecContext(cpu, 0, CpuCategory.USER).charge(100_000)
        ExecContext(cpu, 1, CpuCategory.SOFTIRQ).charge(50_000)
        m = reduce_run(cpu, before, 1_000)
        # The slower stage limits throughput; SMT pairs cpus 0/1 though,
        # so two busy lanes on one physical core get derated.
        assert m.wall_ns == 100_000
        assert m.cpu_util["softirq"] == pytest.approx(0.5)
        assert m.cpu_util["total"] == pytest.approx(1.5)

    def test_line_rate_cap(self):
        cpu = CpuModel(2)
        before = CpuSnapshot.take(cpu)
        ExecContext(cpu, 0, CpuCategory.USER).charge(10_000)  # 100 Mpps raw
        m = reduce_run(cpu, before, 1_000, link_gbps=10, frame_len=64)
        assert m.capped_by_line
        assert m.mpps == pytest.approx(14.88, abs=0.01)

    def test_poll_idle_topup(self):
        cpu = CpuModel(4)
        before = CpuSnapshot.take(cpu)
        ExecContext(cpu, 0, CpuCategory.SOFTIRQ).charge(100_000)
        pmd = ExecContext(cpu, 2, CpuCategory.USER)
        pmd.charge(30_000)  # mostly idle-polling
        m = reduce_run(cpu, before, 1_000, pmd_cpus=(2,))
        # The PMD burns its whole window: 0.3 busy + 0.7 poll-idle.
        assert m.cpu_util["user"] == pytest.approx(1.0)
        assert m.cpu_util["total"] == pytest.approx(2.0)

    def test_requires_work(self):
        cpu = CpuModel(1)
        before = CpuSnapshot.take(cpu)
        with pytest.raises(RuntimeError, match="nothing was measured"):
            reduce_run(cpu, before, 10)
        with pytest.raises(ValueError):
            reduce_run(cpu, before, 0)
