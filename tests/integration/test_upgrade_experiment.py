"""The upgrade experiment end to end: determinism, the per-datapath
disruption ordering the paper's §6 argument rests on, and packet
conservation straight through a crash."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.afxdp.driver import AfxdpOptions
from repro.experiments import upgrade
from repro.experiments.upgrade import run_upgrade
from repro.sim import faults, trace
from repro.sim.faults import FaultPlan, FaultRule
from repro.sim.supervisor import Supervisor
from repro.traffic.trex import FlowSpec, TrexStream

PACKETS = 640  # 20 bursts; the crash fires on burst 4


@pytest.fixture(scope="module")
def results():
    out = run_upgrade(packets=PACKETS, seed=0)
    return {r.scenario: r for r in out}


def test_every_scenario_crashes_once_and_conserves(results):
    assert set(results) == set(upgrade.SCENARIOS)
    for r in results.values():
        assert r.restarts == 1
        assert r.conserved
        assert r.delivered + r.lost == r.offered


def test_run_twice_is_byte_identical():
    a = [r.to_json() for r in run_upgrade(packets=PACKETS, seed=0)]
    b = [r.to_json() for r in run_upgrade(packets=PACKETS, seed=0)]
    assert a == b


def test_kernel_state_survival_beats_cold_cache_netdev(results):
    """Kernel megaflows forward through the outage; the netdev flavors
    lose everything offered while their process is gone — and pay more
    downtime (socket/umem rebind, cold caches)."""
    kernel, zc = results["kernel"], results["afxdp_zc"]
    assert kernel.lost < zc.lost
    assert kernel.lost == 0  # warm megaflows carried the whole outage
    assert kernel.downtime_ns < zc.downtime_ns
    assert zc.lost > 0
    assert zc.sinks.get("nic.xdp_redirect_failed", 0) > 0


def test_ebpf_dataplane_survives_the_control_process(results):
    assert results["ebpf"].lost == 0
    # No daemon => no ovsdb/ports/state/resync phases at all.
    assert set(results["ebpf"].phase_ns) == {"detect", "exec"}


def test_zero_copy_rebind_costs_more_than_copy_mode(results):
    zc, copy = results["afxdp_zc"], results["afxdp_copy"]
    # The zc queue-pair restart makes recovery strictly longer.
    assert zc.phase_ns["ports"] > copy.phase_ns["ports"]


def test_dpdk_discards_its_stale_hardware_rings(results):
    dpdk = results["dpdk"]
    assert dpdk.sinks.get("crash.dpdk_ring_reset", 0) > 0
    assert dpdk.downtime_ns > results["afxdp_zc"].downtime_ns


def test_seed_changes_retry_draws_not_conservation():
    a = {r.scenario: r for r in run_upgrade(
        packets=PACKETS, seed=1, scenarios=("kernel", "afxdp_zc"))}
    for r in a.values():
        assert r.conserved
        assert r.restarts == 1


def test_unknown_scenario_is_rejected():
    with pytest.raises(ValueError, match="unknown scenario"):
        run_upgrade(packets=64, scenarios=("vpp",))


# ----------------------------------------------------------------------
# Conservation through crashes with frames dead in the process's rings.
# ----------------------------------------------------------------------
def test_frames_in_flight_at_the_crash_become_named_sinks():
    """Kill the daemon while redirected frames sit unconsumed in its XSK
    rx rings: they die with the umem and must come back as the
    ``crash.xsk_rx_inflight`` sink, not silent loss."""
    stream = TrexStream(FlowSpec(n_flows=4))
    with faults.injecting(FaultPlan(seed=0)), trace.recording():
        world = upgrade._build_afxdp(stream, zerocopy=True)
        host = world.host
        sup = Supervisor(host.user_ctx(host.cpu.n_cpus - 1), host.clock,
                         vs=world.vs, pmds=world.pmds)
        # Redirect a burst into the XSKs but let no PMD consume it.
        for pkt in stream.burst(8):
            world.nic_in.host_receive(pkt)
        while world.nic_in.pending():
            host.kernel.service_nic(world.nic_in, budget=8)
        sup.crash()
        sup.finish()
        world.pump(sup.up)
        ledger = world.ledger(8, sup.crash_sinks)
    assert sup.crash_sinks["crash.xsk_rx_inflight"] == 8
    assert ledger.conserved()


@settings(deadline=None, max_examples=8)
@given(seed=st.integers(min_value=0, max_value=2**16),
       crash_rate=st.sampled_from([0.1, 0.3, 1.0]),
       retry_rate=st.sampled_from([0.0, 0.5, 1.0]))
def test_conservation_for_arbitrary_seeded_crash_plans(
        seed, crash_rate, retry_rate):
    """However often the plan kills the daemon (up to every burst) and
    however badly the recovery faults stretch it, every offered frame
    ends up forwarded or in a named sink."""
    from repro.experiments import degradation

    plan = FaultPlan(seed=seed, rules=[
        FaultRule("vswitchd.crash", rate=crash_rate),
        FaultRule("ovsdb.disconnect", rate=retry_rate),
        FaultRule("netlink.enobufs", rate=retry_rate),
    ])
    point = degradation._run_point_traced(
        plan, crash_rate, packets=96, n_flows=8, link_gbps=25.0,
        options=AfxdpOptions())
    assert point.conserved, point.to_json()
