"""Sharded execution is invisible: byte-identity, determinism,
arbitrary partitions (DESIGN §17).

The heavyweight gate (``repro.tools.shard_gate``) checks the full
experiment set at CI packet counts; this suite proves the same
properties at test-sized workloads, plus the ones only a property test
can state — *any* port->shard partition of a seeded fault-plan world
merges to the serial conservation ledger.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.fault_cells import merged_fault_ledger
from repro.experiments.fig9_forwarding import cell_units, run_fig9
from repro.experiments.fig12_multiqueue import run_fig12
from repro.sim import profile
from repro.sim.profile import collapse
from repro.sim.shard import (
    PipelineSpec,
    merge_ledgers,
    run_pipeline,
    run_units,
)
from repro.tools.conservation import PacketLedger

N_PORTS = 4
_PLAN_SEED = 20260809


def _fig9_observables(packets: int, shards: int):
    with profile.profiling() as rec:
        result = run_fig9(packets=packets, scenarios=("P2P",),
                          shards=shards)
    return (dict(result.cells), rec.ledger(), dict(rec.counters),
            collapse(rec.profiler.root))


def test_fig9_sharded_byte_identical_and_deterministic():
    serial = _fig9_observables(200, shards=1)
    assert serial[1] and serial[2]  # not a vacuous comparison
    for shards in (1, 2, 4):
        first = _fig9_observables(200, shards=shards)
        assert first == serial
        assert _fig9_observables(200, shards=shards) == first  # run twice


def test_fig12_sharded_mpps_byte_identical_to_serial():
    serial = run_fig12(packets_per_queue=40, shards=1).series
    for shards in (2, 4):
        sharded = run_fig12(packets_per_queue=40, shards=shards).series
        assert sharded == serial
        # Byte-identical, not merely close: compare the repr dumps.
        assert json.dumps({str(k): v for k, v in sharded.items()}) == \
            json.dumps({str(k): v for k, v in serial.items()})


def test_merge_mutations_trip_on_a_real_experiment():
    units = cell_units(120, scenarios=("P2P",))
    with profile.profiling() as rec:
        run_units(units, shards=1)
    serial = rec.ledger()
    for mutation in ("reorder", "collapse"):
        with profile.profiling() as rec:
            run_units(units, shards=2, _mutate_merge=mutation)
        assert rec.ledger() != serial, mutation


# ----------------------------------------------------------------------
# Pipeline sharding.
# ----------------------------------------------------------------------
def test_pipeline_partitions_merge_to_the_serial_identity():
    spec = PipelineSpec(n_stages=4, n_flows=8, burst=32)
    serial = run_pipeline(spec, n_packets=320, shards=1)
    assert serial.forwarded == 320
    for partition in ([0, 1, 0, 1], [0, 0, 1, 1], [1, 0, 2, 0]):
        sharded = run_pipeline(spec, n_packets=320,
                               shards=max(partition) + 1,
                               partition=partition)
        assert sharded.identity() == serial.identity()
        assert sharded.report.handoffs, "no cross-shard handoffs seen"


def test_pipeline_handoff_accounting_is_truthful():
    spec = PipelineSpec(n_stages=2, n_flows=4, burst=32)
    result = run_pipeline(spec, n_packets=96, shards=2, partition=[0, 1])
    (handoff,) = result.report.handoffs
    assert handoff.name == "ring1"
    assert (handoff.from_shard, handoff.to_shard) == (0, 1)
    assert handoff.packets == 96
    assert handoff.transfers == result.rounds - 1  # last round drains


# ----------------------------------------------------------------------
# The Hypothesis property: ANY partition merges exactly.
# ----------------------------------------------------------------------
def _serial_ledger():
    # Computed once; every example compares against the same dict.
    if not hasattr(_serial_ledger, "value"):
        _serial_ledger.value = merged_fault_ledger(
            N_PORTS, _PLAN_SEED, shards=1, packets=120)
    return _serial_ledger.value


@settings(max_examples=12, deadline=None)
@given(partition=st.lists(st.integers(min_value=0, max_value=2),
                          min_size=N_PORTS, max_size=N_PORTS))
def test_any_partition_merges_to_the_serial_fault_ledger(partition):
    serial = _serial_ledger()
    assert serial["forwarded"] < serial["offered"]  # faults really fire
    assert serial["sinks"], "no drop sinks: the property is vacuous"
    sharded = merged_fault_ledger(N_PORTS, _PLAN_SEED, shards=3,
                                  placement=partition, packets=120)
    assert sharded == serial


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_fault_world_run_twice_determinism(workers):
    a = merged_fault_ledger(N_PORTS, _PLAN_SEED, shards=workers,
                            packets=120)
    b = merged_fault_ledger(N_PORTS, _PLAN_SEED, shards=workers,
                            packets=120)
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


def test_merge_ledgers_sums_integer_sinks_exactly():
    merged = merge_ledgers([
        PacketLedger(offered=10, forwarded=8, sinks={"a": 2}),
        PacketLedger(offered=5, forwarded=4, sinks={"a": 1, "b": 0}),
    ])
    assert (merged.offered, merged.forwarded) == (15, 12)
    assert merged.sinks == {"a": 3, "b": 0}
