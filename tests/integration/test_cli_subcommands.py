"""Every ``python -m repro`` subcommand runs end to end.

Each experiment is driven through the real CLI dispatcher
(:func:`repro.__main__.main`) under a tiny packet/byte budget so the
whole sweep fits in the tier-1 suite.  Experiment ``main()``s call their
``run_*`` entry point by module-global name, so shrinking the budget is
a matter of rebinding that global to a :func:`functools.partial`;
``fig9``, ``degradation`` and ``upgrade`` read a ``PACKETS`` module
global at call time instead, so those get the global patched.
"""

import functools
import importlib
import json

import pytest

from repro.__main__ import EXPERIMENTS, main

#: experiment key -> (module attribute, replacement kwargs).  ``None``
#: means the experiment is already cheap enough to run unmodified.
TINY = {
    "fig1": None,
    "fig2": ("run_fig2", {"packets": 300}),
    "table2": ("run_table2", {"packets": 300}),
    "table3": ("run_table3", {"target_rules": 4000}),
    "fig8": ("run_fig8", {"total_bytes": 60_000}),
    "fig9": ("PACKETS", 150),
    "fig10": ("run_fig10", {"n_transactions": 40}),
    "fig11": ("run_fig11", {"n_transactions": 40}),
    "table5": ("run_table5", {"packets": 400}),
    "fig12": ("run_fig12", {"packets_per_queue": 150}),
    "degradation": ("PACKETS", 200),
    "upgrade": ("PACKETS", 640),
    "observer-effect": ("PACKETS", 150),
}


def _shrink(monkeypatch, key):
    recipe = TINY[key]
    if recipe is None:
        return
    module = importlib.import_module(EXPERIMENTS[key][1])
    attr, small = recipe
    if isinstance(small, dict):
        runner = getattr(module, attr)
        monkeypatch.setattr(module, attr,
                            functools.partial(runner, **small))
    else:
        monkeypatch.setattr(module, attr, small)


@pytest.mark.parametrize("key", sorted(TINY))
def test_experiment_subcommand_runs(key, monkeypatch, capsys):
    _shrink(monkeypatch, key)
    assert main([key]) == 0
    out = capsys.readouterr().out
    assert EXPERIMENTS[key][0] in out
    assert f"[{key} done in" in out


def test_matrix_subcommand_runs(tmp_path, capsys):
    out_path = tmp_path / "matrix.json"
    argv = ["matrix", "--quick", "--budget", "120", "--sizes", "64",
            "--flows", "1,1000", "--datapaths", "kernel,dpdk",
            "--topologies", "P2P", "--out", str(out_path)]
    assert main(argv) == 0
    doc = json.loads(out_path.read_text())
    assert doc["schema"] == "repro.perfmatrix/1"
    assert len(doc["cells"]) == 4
    # The rendered table reaches stdout too.
    assert "Mpps" in capsys.readouterr().out


@pytest.mark.parametrize("flag,module_name", [
    ("--no-jit", "repro.ebpf.jit"),
    ("--no-dpjit", "repro.ovs.dpjit"),
])
def test_compiler_opt_out_flags(flag, module_name, monkeypatch, capsys):
    """``--no-jit``/``--no-dpjit`` run the experiment through the
    interpreter/generic walk and restore the default afterwards."""
    mod = importlib.import_module(module_name)
    assert mod.ENABLED
    monkeypatch.setattr(mod, "ENABLED", True)  # restore on test exit
    _shrink(monkeypatch, "fig2")
    assert main([flag, "fig2"]) == 0
    assert not mod.ENABLED
    assert "[fig2 done in" in capsys.readouterr().out
    mod.set_enabled(True)


def test_trace_flag_composes_with_an_experiment(monkeypatch, capsys):
    _shrink(monkeypatch, "fig2")
    assert main(["--trace", "fig2"]) == 0
    assert "virtual-time profile: fig2" in capsys.readouterr().out


def test_unknown_subcommand_is_rejected(capsys):
    assert main(["fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err
