"""Fast, small-scale versions of the paper's headline claims.

The benchmarks regenerate the full tables; these integration tests pin
the *orderings* — the facts the paper's takeaways and outcomes assert —
at reduced packet counts so they run inside the normal test suite.
"""

import pytest

from repro.afxdp.driver import AfxdpOptions
from repro.afxdp.umempool import LockStrategy
from repro.experiments.p2p import afxdp_p2p, dpdk_p2p, ebpf_p2p, kernel_p2p
from repro.experiments.pvp_pcp import afxdp_pcp, dpdk_pcp, kernel_pcp
from repro.traffic.trex import FlowSpec, TrexStream

N = 600


def _mpps(bench, flows=1, frame=64, vary_dst=True):
    stream = TrexStream(FlowSpec(flows, vary_dst=vary_dst), frame_len=frame)
    return bench.drive(stream, N).mpps


class TestTakeaways:
    def test_takeaway4_ebpf_slower_than_kernel(self):
        """'eBPF packet switching [is] 10-20% slower than ... the
        conventional OVS kernel module.'"""
        kernel = _mpps(kernel_p2p(n_queues=1, link_gbps=10))
        ebpf = _mpps(ebpf_p2p(link_gbps=10))
        slowdown = 1 - ebpf / kernel
        assert 0.05 < slowdown < 0.25

    def test_dpdk_much_faster_than_kernel(self):
        """'Conventional in-kernel packet processing is now much slower
        than newer options such as DPDK.'"""
        kernel = _mpps(kernel_p2p(n_queues=1, link_gbps=10))
        dpdk = _mpps(dpdk_p2p(link_gbps=10))
        assert dpdk > 3 * kernel


class TestSection3Optimizations:
    def test_o1_pmd_threads_big_win(self):
        base_opts = AfxdpOptions(lock_strategy=LockStrategy.MUTEX,
                                 batched_locking=False,
                                 preallocated_metadata=False,
                                 batch_size=8)
        no_pmd = _mpps(afxdp_p2p(options=base_opts,
                                 pmd_main_thread_mode=True, link_gbps=10))
        pmd = _mpps(afxdp_p2p(options=AfxdpOptions(
            lock_strategy=LockStrategy.MUTEX, batched_locking=False,
            preallocated_metadata=False), link_gbps=10))
        assert pmd > 3 * no_pmd  # paper: 6x

    def test_o2_spinlock_beats_mutex(self):
        mutex = _mpps(afxdp_p2p(options=AfxdpOptions(
            lock_strategy=LockStrategy.MUTEX, batched_locking=False),
            link_gbps=10))
        spin = _mpps(afxdp_p2p(options=AfxdpOptions(
            batched_locking=False), link_gbps=10))
        assert spin > mutex

    def test_o5_checksum_estimate_helps(self):
        sw = _mpps(afxdp_p2p(options=AfxdpOptions(), link_gbps=10))
        est = _mpps(afxdp_p2p(options=AfxdpOptions(
            sw_checksum_on_tx=False), link_gbps=10))
        assert est > sw


class TestOutcome2Containers:
    def test_afxdp_wins_pcp(self):
        """'OVS AF_XDP outperforms the other solutions when the endpoints
        are containers.'"""
        results = {
            "kernel": _mpps(kernel_pcp(), flows=1, vary_dst=False),
            "afxdp": _mpps(afxdp_pcp(), flows=1, vary_dst=False),
            "dpdk": _mpps(dpdk_pcp(), flows=1, vary_dst=False),
        }
        assert results["afxdp"] == max(results.values())


class TestFlowScaling:
    def test_thousand_flows_hurt_userspace_help_kernel(self):
        """'For all of the userspace datapath cases, 1,000 flows perform
        worse than a single flow because of the increased flow lookup
        overhead. The opposite is true only for the kernel datapath.'"""
        afxdp = afxdp_p2p(link_gbps=25)
        one = _mpps(afxdp, flows=1)
        many = _mpps(afxdp_p2p(link_gbps=25), flows=1000)
        assert many < one
        kernel_one = _mpps(kernel_p2p(n_queues=10, link_gbps=25), flows=1)
        kernel_many = _mpps(kernel_p2p(n_queues=10, link_gbps=25),
                            flows=1000)
        assert kernel_many > kernel_one


class TestUpgradeStory:
    def test_afxdp_deployment_never_loads_the_module(self):
        """§6: easier deployment/upgrading — the whole lifecycle without
        ever touching openvswitch.ko."""
        from repro.hosts.host import Host

        host = Host("prod", n_cpus=4)
        nic = host.add_nic("ens1")
        vs = host.install_ovs("netdev")
        vs.add_bridge("br0")
        vs.add_afxdp_port("br0", nic, AfxdpOptions())
        vs.restart()  # an upgrade
        vs.restart()  # a bugfix
        assert not host.kernel.module_loaded
        # And the NIC is still kernel-managed throughout.
        assert host.kernel.init_ns.has_device("ens1")
