"""Determinism and purity gates for the performance matrix.

Two contracts:

* **Determinism** — running any matrix cell (or a whole grid) twice
  yields byte-identical canonical JSON: every number comes off the
  virtual cost model, never a wall clock.
* **Purity** — the harness is observably read-only.  A matrix run
  leaves the fig2/fig9 trace ledgers byte-identical to runs made
  without the harness: no global state (caches, RNG, cost tables)
  leaks from matrix cells into the paper experiments.
"""

import json

import pytest

from repro.perfmatrix.cells import CellSpec, UnsupportedCell, run_cell
from repro.perfmatrix.matrix import MatrixGrid, canonical_json, run_matrix
from repro.sim import trace

#: Tiny budget: determinism does not depend on scale.
PACKETS = 200

TINY_GRID = MatrixGrid(
    label="quick",
    frame_lens=(64,),
    flow_counts=(1,),
    datapaths=("kernel", "dpdk"),
    topologies=("P2P",),
    packets=PACKETS,
)


@pytest.mark.parametrize("spec", [
    CellSpec("P2P", "dpdk", 64, 1),
    CellSpec("P2P", "afxdp_zc", 1518, 1000),
    CellSpec("PVP", "kernel", 64, 1),
    CellSpec("PCP", "afxdp_zc", 64, 1),
], ids=lambda s: s.cell_id)
def test_cell_json_is_byte_identical_across_runs(spec):
    a = json.dumps(run_cell(spec, packets=PACKETS), sort_keys=True)
    b = json.dumps(run_cell(spec, packets=PACKETS), sort_keys=True)
    assert a == b


def test_matrix_json_is_byte_identical_across_runs():
    assert canonical_json(run_matrix(TINY_GRID)) == canonical_json(
        run_matrix(TINY_GRID))


def test_unsupported_cells_raise():
    with pytest.raises(UnsupportedCell):
        run_cell(CellSpec("PVP", "ebpf", 64, 1), packets=PACKETS)


def _fig2_ledger() -> str:
    from repro.experiments.fig2_single_flow import run_fig2

    with trace.recording() as rec:
        run_fig2(packets=300)
    return rec.ledger()


def _fig9_ledger() -> str:
    from repro.experiments.fig9_forwarding import run_fig9

    with trace.recording() as rec:
        run_fig9(packets=200, scenarios=("P2P",))
    return rec.ledger()


@pytest.mark.parametrize("ledger_of", [_fig2_ledger, _fig9_ledger],
                         ids=["fig2", "fig9"])
def test_matrix_run_is_observably_read_only(ledger_of):
    """Experiment ledgers are unchanged by a matrix run in between."""
    before = ledger_of()
    run_matrix(TINY_GRID)
    run_cell(CellSpec("PVP", "afxdp_zc", 64, 1000), packets=PACKETS)
    assert ledger_of() == before


def test_matrix_under_external_recorder_leaves_it_balanced():
    """Riding a caller's recorder (python -m repro --trace matrix) must
    not corrupt it: spans stay balanced and the cell result is the one
    a bare run produces."""
    bare = json.dumps(
        run_cell(CellSpec("P2P", "dpdk", 64, 1), packets=PACKETS),
        sort_keys=True)
    with trace.recording() as rec:
        riding = json.dumps(
            run_cell(CellSpec("P2P", "dpdk", 64, 1), packets=PACKETS),
            sort_keys=True)
        assert rec.counters, "riding the recorder should still count"
    assert riding == bare
