"""Differential trace tests: the ledger must attribute costs to the
stage that actually ran, not merely balance in aggregate."""

import pytest

from repro.afxdp.driver import AfxdpOptions
from repro.ebpf.programs import l2_forward_program, l2_key
from repro.ebpf.vm import EbpfVm
from repro.ebpf.verifier import verify
from repro.experiments.p2p import afxdp_p2p
from repro.hosts.host import Host
from repro.net.addresses import MacAddress
from repro.net.builder import make_udp_packet
from repro.ovs.emc import ExactMatchCache
from repro.ovs.match import Match
from repro.ovs.ofactions import OutputAction
from repro.ovs.openflow import OpenFlowConnection
from repro.sim import trace
from repro.sim.cpu import CpuCategory, ExecContext
from repro.traffic.trex import FlowSpec, TrexStream


def _udp_pkt():
    return make_udp_packet(MacAddress.local(1), MacAddress.local(2),
                           "10.0.0.1", "10.0.0.2", 1000, 2000)


@pytest.fixture
def netdev_world():
    host = Host("trace-dut", n_cpus=2)
    vs = host.install_ovs("netdev")
    vs.add_bridge("br0")
    p1, _a1 = vs.add_sim_port("br0", "p1")
    p2, _a2 = vs.add_sim_port("br0", "p2")
    of = OpenFlowConnection(vs.bridge("br0"))
    of.add_flow(0, 10, Match(in_port=p1.ofport), [OutputAction("p2")])
    ctx = ExecContext(host.cpu, 0, CpuCategory.USER)
    return vs, p1, ctx, ExactMatchCache()


# ----------------------------------------------------------------------
# Cache-tier attribution.
# ----------------------------------------------------------------------
def test_emc_hit_charges_no_megaflow_or_upcall(netdev_world):
    vs, p1, ctx, emc = netdev_world
    # Warm outside the recorder: first packet upcalls and installs both
    # the megaflow and the EMC entry.
    vs.dpif_netdev.process_batch([_udp_pkt()], p1.dp_port_no, ctx, emc)
    with trace.recording() as rec:
        vs.dpif_netdev.process_batch(
            [_udp_pkt() for _ in range(8)], p1.dp_port_no, ctx, emc
        )
    assert rec.counter("emc.hit") == 8
    assert rec.counter("emc.miss") == 0
    assert rec.counter("dpcls.hit") == 0
    assert rec.counter("dp.upcall") == 0
    assert rec.span_ns("dpcls") == 0.0
    assert rec.span_ns("upcall") == 0.0
    assert "upcall" not in rec.span_totals
    assert rec.conserved()


def test_emc_miss_walks_exactly_one_tier_down(netdev_world):
    vs, p1, ctx, emc = netdev_world
    vs.dpif_netdev.process_batch([_udp_pkt()], p1.dp_port_no, ctx, emc)
    # A fresh EMC forces a megaflow lookup but not an upcall.
    with trace.recording() as rec:
        vs.dpif_netdev.process_batch(
            [_udp_pkt()], p1.dp_port_no, ctx, ExactMatchCache()
        )
    assert rec.counter("emc.miss") == 1
    assert rec.counter("dpcls.hit") == 1
    assert rec.counter("dp.upcall") == 0
    assert rec.span_ns("dpcls") > 0.0
    assert rec.span_ns("upcall") == 0.0
    assert rec.conserved()


def test_cold_start_records_the_upcall_span(netdev_world):
    vs, p1, ctx, emc = netdev_world
    with trace.recording() as rec:
        vs.dpif_netdev.process_batch([_udp_pkt()], p1.dp_port_no, ctx, emc)
    assert rec.counter("dp.upcall") == 1
    assert rec.counter("emc.miss") == 1
    assert rec.counter("dpcls.miss") == 1
    assert rec.span_ns("upcall") > 0.0
    # The nested span's inclusive total contains the slow-path charge.
    assert rec.span_totals["upcall"][1] >= rec.span_ns("upcall")
    assert rec.conserved()


# ----------------------------------------------------------------------
# AF_XDP copy-mode attribution.
# ----------------------------------------------------------------------
def _afxdp_run(force_copy: bool) -> trace.TraceRecorder:
    bench = afxdp_p2p(
        options=AfxdpOptions(force_copy_mode=force_copy), link_gbps=10.0
    )
    with trace.recording() as rec:
        bench.drive(TrexStream(FlowSpec(1), frame_len=128), 256)
    return rec


def test_copy_mode_records_strictly_more_copy_bytes():
    zerocopy = _afxdp_run(force_copy=False)
    copy = _afxdp_run(force_copy=True)
    assert zerocopy.counter("afxdp.copy_bytes") == 0
    assert copy.counter("afxdp.copy_bytes") > 0
    assert copy.counter("afxdp.copies") > 0
    # Copy mode copies on rx and tx: at least 2 copies * 128B per packet.
    assert copy.counter("afxdp.copy_bytes") >= 256 * 2 * 128
    assert zerocopy.conserved() and copy.conserved()


def test_afxdp_run_counts_tx_kick_syscalls():
    rec = _afxdp_run(force_copy=False)
    assert rec.counter("afxdp.tx_kick_syscalls") > 0
    assert rec.counter("dp.rx_packets") > 0


# ----------------------------------------------------------------------
# eBPF attribution.
# ----------------------------------------------------------------------
def test_ebpf_span_matches_vm_retired_totals():
    program, fib = l2_forward_program()
    vm = EbpfVm(verify(program))
    pkt = _udp_pkt()
    fib.update(l2_key(pkt.data[0:6]), (7).to_bytes(4, "little"))
    with trace.recording() as rec:
        for _ in range(5):
            vm.run(pkt.data)
    assert rec.counter("ebpf.insns_retired") == vm.insns_executed
    assert rec.counter("ebpf.helper_calls") == vm.helper_calls
    assert rec.counter("ebpf.runs") == 5


def test_ebpf_retired_counter_is_per_recording_window():
    program, fib = l2_forward_program()
    vm = EbpfVm(verify(program))
    pkt = _udp_pkt()
    fib.update(l2_key(pkt.data[0:6]), (7).to_bytes(4, "little"))
    vm.run(pkt.data)  # outside any recorder
    before = vm.insns_executed
    with trace.recording() as rec:
        vm.run(pkt.data)
    # Only the window's instructions, not the VM's cumulative total.
    assert rec.counter("ebpf.insns_retired") == vm.insns_executed - before
    assert rec.counter("ebpf.helper_calls") < vm.helper_calls
