"""Profiling acceptance gates at full-experiment scale.

Three contracts:

* **Conservation** — the call tree's root inclusive time equals both the
  span ledger total and the CPU-side ``cpu_charged_ns`` on real runs.
* **Zero overhead off** — attaching a profiler (or nothing) never
  changes a single byte of the trace ledger existing gates compare.
* **Determinism** — the collapsed-stack flamegraph of two identical runs
  is byte-identical.
"""

import pytest

from repro.sim import profile, trace
from repro.sim.profile import collapse


def _run_experiment(experiment: str, packets: int) -> None:
    if experiment == "fig2":
        from repro.experiments.fig2_single_flow import run_fig2

        run_fig2(packets=packets)
    elif experiment == "fig9":
        from repro.experiments.fig9_forwarding import run_fig9

        run_fig9(packets=packets, scenarios=("P2P",))
    elif experiment == "table2":
        from repro.experiments.table2_optimizations import run_table2

        run_table2(packets=packets)
    else:
        from repro.experiments.table5_xdp_cost import run_table5

        run_table5(packets=packets)


def _profiled(experiment: str, packets: int):
    with profile.profiling() as rec:
        _run_experiment(experiment, packets)
    return rec


def _walk(node):
    yield node
    for child in node.children.values():
        yield from _walk(child)


PACKETS = {"fig2": 400, "fig9": 300, "table2": 400, "table5": 500}


@pytest.mark.parametrize("experiment", sorted(PACKETS))
def test_profile_conserves_against_ledger(experiment):
    rec = _profiled(experiment, PACKETS[experiment])
    root_ns = rec.profiler.root.inclusive_ns()
    assert root_ns > 0
    assert root_ns == pytest.approx(rec.total_ns, rel=1e-9)
    assert root_ns == pytest.approx(rec.cpu_charged_ns, rel=1e-9)


def test_table5_breakdown_covers_all_four_programs():
    """Table 5's A-D cost split, measured: each task's eBPF time shows
    up under its own ``xdp:<program>`` frame, and the per-program times
    sum exactly to the ledger's ``ebpf`` stage total."""
    rec = _profiled("table5", PACKETS["table5"])
    programs = {
        "A": "xdp:xdp_drop_all",
        "B": "xdp:xdp_parse_drop",
        "C": "xdp:xdp_parse_lookup_drop",
        "D": "xdp:xdp_parse_swap_tx",
    }
    frames = {
        node.label: node
        for node in _walk(rec.profiler.root)
        if node.label.startswith("xdp:")
    }
    assert set(frames) == set(programs.values())
    def ebpf_ns(frame):
        return sum(n.ns for n in _walk(frame) if n.label == "ebpf")

    per_task = {
        task: ebpf_ns(frames[label]) for task, label in programs.items()
    }
    assert all(ns > 0 for ns in per_task.values())
    # The same packet count ran through each task; drop-only is the
    # cheapest program, and adding a parse stage costs more still.
    # (Full A<B<C<D rate ordering includes TX-path cost charged
    # outside the program frame, so it is not asserted here.)
    assert all(per_task["A"] < per_task[t] for t in "BCD")
    assert per_task["B"] < per_task["C"]
    # Every eBPF nanosecond in the ledger is attributed to exactly one
    # program frame.
    assert sum(per_task.values()) == pytest.approx(
        rec.spans["ebpf"][1], rel=1e-9)


@pytest.mark.parametrize("experiment", ["fig2", "fig9", "table2"])
def test_profiler_leaves_ledger_byte_identical(experiment):
    """The zero-overhead-off gate, inverted: even profiling *on* must
    not perturb the span ledger — profiler-only frames live outside it
    and leaf attribution uses the identical float-addition order."""
    packets = PACKETS[experiment]
    with trace.recording() as rec_plain:
        _run_experiment(experiment, packets)
    rec_prof = _profiled(experiment, packets)
    assert rec_prof.ledger() == rec_plain.ledger()


def test_flamegraph_is_byte_identical_across_runs():
    a = collapse(_profiled("fig2", 400).profiler.root)
    b = collapse(_profiled("fig2", 400).profiler.root)
    assert a == b
    assert a  # non-trivial: at least one stack line


def test_fig2_tree_contains_expected_frames():
    """The call tree narrates the fig2 pipeline: kernel NIC servicing
    with its eBPF programs, and the PMD poll loop with the datapath
    input frame nested inside."""
    rec = _profiled("fig2", 400)
    labels = {node.label for node in _walk(rec.profiler.root)}
    assert "kernel.service_nic" in labels
    assert "dp.input" in labels
    assert any(label.startswith("pmd/") for label in labels)
