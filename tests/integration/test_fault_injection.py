"""Fault-injection integration gates.

Three contracts, in order of importance:

1. **Zero-overhead-off**: with no plan — or an installed-but-inert plan —
   every experiment trace ledger is byte-identical to a faultless build.
2. **Real mitigations per layer**: each fault point triggers the same
   degradation mechanism real OVS uses (EAGAIN backoff, copy-mode
   fallback, ``lost:`` accounting, emc-insert-inv-prob, flow limits,
   slow-path degradation), observable through counters and cost deltas —
   never a silent no-op.
3. **Packet conservation**: for *any* seeded plan, every offered packet
   is forwarded or attributed to a named drop counter (the Hypothesis
   property at the bottom).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.afxdp.driver import AfxdpDriver, AfxdpOptions
from repro.afxdp.socket import TX_KICK_MAX_RETRIES, BindMode, XskSocket
from repro.afxdp.umem import Umem
from repro.afxdp.umempool import UmemPool
from repro.hosts.host import Host
from repro.kernel.kernel import Kernel
from repro.kernel.netdev import NetDevice, Wire
from repro.kernel.nic import NicFeatures, PhysicalNic
from repro.net.addresses import MacAddress
from repro.net.builder import make_udp_packet
from repro.ovs import dpif_netdev
from repro.ovs.appctl import OvsAppctl
from repro.ovs.emc import ExactMatchCache
from repro.ovs.match import Match
from repro.ovs.ofactions import OutputAction
from repro.ovs.openflow import OpenFlowConnection
from repro.sim import faults, trace
from repro.sim.costs import DEFAULT_COSTS
from repro.sim.cpu import CpuCategory, CpuModel, ExecContext
from repro.sim.faults import FaultPlan, FaultRule

from .test_trace_determinism import _experiment_ledger, _reference_mode


def mac(i):
    return MacAddress.local(i)


PKT = make_udp_packet(mac(1), mac(2), "10.0.0.1", "10.0.0.2", frame_len=64)


def _udp(sport=1000):
    return make_udp_packet(mac(1), mac(2), "10.0.0.1", "10.0.0.2",
                           sport, 2000, frame_len=64)


def _ctx(cpu=None, category=CpuCategory.USER):
    return ExecContext(cpu if cpu is not None else CpuModel(2), 0, category)


def _socket(bind_mode=BindMode.ZEROCOPY, prime=64):
    umem = Umem(n_frames=256, ring_size=256)
    pool = UmemPool(umem)
    sock = XskSocket(umem, pool, bind_mode=bind_mode, ring_size=256)
    if prime:
        addrs = pool.alloc(prime, _ctx())
        umem.fill_ring.produce_batch([(a, 0) for a in addrs])
    return sock


# ======================================================================
# 1. Zero-overhead-off: inert plans change nothing, byte for byte.
# ======================================================================
@pytest.mark.parametrize("experiment,packets",
                         [("fig2", 400), ("fig9", 300), ("table2", 400)])
def test_inert_plan_ledger_byte_identical(experiment, packets):
    """An installed plan with zero-rate rules must not perturb a single
    ledger byte: no stray RNG draws, no extra charges, no counters."""
    bare = _experiment_ledger(experiment, packets)
    inert = FaultPlan(seed=9, rules=[
        FaultRule(point, rate=0.0) for point in faults.FAULT_POINTS])
    with faults.injecting(inert):
        injected = _experiment_ledger(experiment, packets)
    assert bare == injected


def test_no_plan_is_the_default():
    assert faults.ACTIVE is None


# ======================================================================
# 2a. AF_XDP socket mitigations.
# ======================================================================
class TestTxKickEagain:
    def test_bounded_backoff_then_success(self):
        cpu = CpuModel(2)
        ctx = _ctx(cpu)
        sock = _socket()
        plan = FaultPlan(rules=[
            FaultRule("afxdp.tx_kick_eagain", nth=1, max_fires=2)])
        with faults.injecting(plan), trace.recording() as rec:
            sent = sock.user_tx_batch([PKT, PKT], ctx)
        assert sent == 2
        assert sock.tx_sent == 2
        assert sock.tx_dropped_kick == 0
        # Two failed attempts waited 1x then 2x the base backoff,
        # charged as wall time (not CPU).
        count, ns = rec.waits["tx_kick_backoff"]
        assert count == 2
        assert ns == DEFAULT_COSTS.tx_kick_backoff_ns * 3
        # Each EAGAIN still paid the syscall entry/exit, in SYSTEM.
        assert rec.counter("afxdp.tx_kick_eagain") == 2
        assert cpu.busy_ns(category=CpuCategory.SYSTEM) >= (
            3 * DEFAULT_COSTS.syscall_base_ns)

    def test_retry_budget_exhausted_drops_and_recycles(self):
        ctx = _ctx()
        sock = _socket()
        free_before = sock.pool.free_count
        plan = FaultPlan(rules=[FaultRule("afxdp.tx_kick_eagain", nth=1)])
        with faults.injecting(plan), trace.recording() as rec:
            sock.user_tx_batch([PKT] * 3, ctx)
        assert sock.tx_sent == 0
        assert sock.tx_dropped_kick == 3
        assert rec.counter("afxdp.tx_dropped_kick") == 3
        # One wait per retry before giving up.
        assert rec.waits["tx_kick_backoff"][0] == TX_KICK_MAX_RETRIES
        # The dropped frames came back through the completion ring: no
        # leak.
        sock.reap_completions(ctx)
        assert sock.pool.free_count == free_before


class TestRingAndUmemFaults:
    def test_fill_ring_overrun_drops_with_counter(self):
        sock = _socket()
        softirq = _ctx(category=CpuCategory.SOFTIRQ)
        plan = FaultPlan(rules=[
            FaultRule("afxdp.fill_ring_overrun", nth=2)])
        with faults.injecting(plan), trace.recording() as rec:
            delivered = sum(sock.kernel_rx(PKT, softirq) for _ in range(6))
        assert delivered == 3
        assert sock.rx_dropped_overrun == 3
        assert rec.counter("afxdp.rx_dropped_overrun") == 3
        assert sock.rx_delivered == 3

    def test_umem_exhaustion_drops_burst_then_recovers(self):
        ctx = _ctx()
        sock = _socket()
        plan = FaultPlan(rules=[
            FaultRule("afxdp.umem_exhausted", nth=1, max_fires=1)])
        with faults.injecting(plan):
            assert sock.user_tx_batch([PKT] * 4, ctx) == 0
            assert sock.tx_dropped_no_umem == 4
            assert sock.user_tx_batch([PKT] * 4, ctx) == 4
        assert sock.tx_sent == 4

    def test_comp_ring_overrun_leaks_frames_from_the_pool(self):
        ctx = _ctx()
        sock = _socket()
        free_before = sock.pool.free_count
        plan = FaultPlan(rules=[
            FaultRule("afxdp.comp_ring_overrun", nth=1, max_fires=1)])
        with faults.injecting(plan):
            assert sock.user_tx_batch([PKT] * 4, ctx) == 4
        # Packets were transmitted, but the kernel could not report the
        # frames back: they are gone until the socket is torn down.
        assert sock.tx_sent == 4
        assert sock.frames_leaked == 4
        assert sock.reap_completions(ctx) == 0
        assert sock.pool.free_count == free_before - 4

    def test_zc_fallback_switches_to_copy_mode_costs(self):
        softirq = _ctx(category=CpuCategory.SOFTIRQ)
        sock = _socket(BindMode.ZEROCOPY)
        plan = FaultPlan(rules=[
            FaultRule("afxdp.zc_fallback", nth=1, max_fires=1)])
        with faults.injecting(plan), trace.recording() as rec:
            assert sock.kernel_rx(PKT, softirq)
        assert sock.bind_mode is BindMode.COPY
        assert sock.zc_fallbacks == 1
        # The fallback packet itself (and all that follow) pays the copy.
        assert rec.counter("afxdp.copies") == 1


# ======================================================================
# 2b. eBPF / XDP degradation.
# ======================================================================
def _wired_nic(**features):
    nic = PhysicalNic("mlx0", mac(10), n_queues=1,
                      features=NicFeatures(**features))
    nic.ifindex = 1
    nic.set_up()
    peer = NetDevice("peer0", mac(11))
    peer.set_up()
    peer.set_rx_handler(lambda pkt, ctx: None)
    Wire(nic, peer, gbps=25)
    return nic


def test_verifier_reject_degrades_to_copy_mode():
    nic = _wired_nic(afxdp_zerocopy=True)
    driver = AfxdpDriver(nic)
    plan = FaultPlan(rules=[
        FaultRule("ebpf.verifier_reject", nth=1, max_fires=1)])
    with faults.injecting(plan), trace.recording() as rec:
        driver.setup()
    assert driver.verifier_rejected
    assert driver.sockets[0].bind_mode is BindMode.COPY
    assert rec.counter("ebpf.verifier_rejected") == 1


def test_map_lookup_fault_degrades_to_slow_path():
    nic = _wired_nic(afxdp_zerocopy=True)
    driver = AfxdpDriver(nic)
    driver.setup()
    softirq = _ctx(category=CpuCategory.SOFTIRQ)
    pmd = _ctx()
    plan = FaultPlan(rules=[
        FaultRule("ebpf.map_lookup_fault", nth=1, max_fires=1)])
    with faults.injecting(plan), trace.recording() as rec:
        nic.host_receive(PKT)
        nic.service_queue(0, softirq)
        faulted = driver.rx_burst(0, pmd)
        nic.host_receive(PKT)
        nic.service_queue(0, softirq)
        healthy = driver.rx_burst(0, pmd)
    # The faulted lookup returned XDP_PASS: the frame went to the kernel
    # stack (slow path), not to the XSK; the next packet flowed normally.
    assert faulted == []
    assert len(healthy) == 1
    assert nic.xdp_passes == 1
    assert rec.counter("ebpf.map_lookup_faults") == 1


# ======================================================================
# 2c. Userspace datapath: upcall shedding, storm breaker, flow limits.
# ======================================================================
@pytest.fixture
def netdev_world():
    host = Host("faults", n_cpus=2)
    vs = host.install_ovs("netdev")
    vs.add_bridge("br0")
    p1, a1 = vs.add_sim_port("br0", "p1")
    p2, a2 = vs.add_sim_port("br0", "p2")
    of = OpenFlowConnection(vs.bridge("br0"))
    of.add_flow(0, 10, Match(in_port=p1.ofport), [OutputAction("p2")])
    ctx = ExecContext(host.cpu, 0, CpuCategory.USER)
    return host, vs, of, p1, a1, p2, a2, ctx


def test_upcall_overload_sheds_and_counts_lost(netdev_world):
    _host, vs, _of, p1, _a1, _p2, a2, ctx = netdev_world
    dp = vs.dpif_netdev
    plan = FaultPlan(rules=[
        FaultRule("dp.upcall_overload", nth=1, max_fires=1)])
    with faults.injecting(plan), trace.recording() as rec:
        dp.process_batch([_udp()], p1.dp_port_no, ctx, ExactMatchCache())
    # The miss was shed: lost AND dropped (lost records the cause,
    # dropped the fate), nothing forwarded, no megaflow installed.
    assert dp.stats.lost == 1
    assert dp.stats.dropped == 1
    assert rec.counter("dp.upcall_lost") == 1
    assert a2.take_transmitted() == []
    assert len(dp.megaflows) == 0
    # The next packet retries the upcall and succeeds.
    with faults.injecting(FaultPlan()):
        dp.process_batch([_udp()], p1.dp_port_no, ctx, ExactMatchCache())
    assert len(a2.take_transmitted()) == 1


def test_upcall_queue_cap_bounds_a_burst(netdev_world):
    _host, vs, of, p1, _a1, _p2, a2, ctx = netdev_world
    dp = vs.dpif_netdev
    # Per-port rules so each flow needs its own upcall + megaflow (a
    # bare in_port rule would collapse into one wildcard megaflow).
    for i in range(4):
        of.add_flow(0, 20, Match(in_port=p1.ofport, tp_src=1000 + i),
                    [OutputAction("p2")])
    pkts = [_udp(sport=1000 + i) for i in range(4)]
    # Cap 2: the burst's first two misses go up, the rest are shed at
    # the full queue.
    with faults.injecting(FaultPlan(upcall_queue_cap=2)):
        dp.process_batch(pkts, p1.dp_port_no, ctx, ExactMatchCache())
    assert dp.stats.upcalls == 4
    assert dp.stats.lost == 2
    assert len(a2.take_transmitted()) == 2


def test_emc_insert_inv_prob_skips_inserts(netdev_world):
    _host, vs, _of, p1, _a1, _p2, a2, ctx = netdev_world
    dp = vs.dpif_netdev
    emc = ExactMatchCache()
    pkts = [_udp(sport=1000 + i) for i in range(32)]
    with faults.injecting(FaultPlan(seed=1, emc_insert_inv_prob=4)), \
            trace.recording() as rec:
        dp.process_batch(pkts, p1.dp_port_no, ctx, emc)
    skipped = rec.counter("dp.emc_insert_skipped")
    assert 0 < skipped < 32
    # Every packet still forwarded — the knob sheds *cache churn*, not
    # traffic.
    assert len(a2.take_transmitted()) == 32


def test_plan_flow_limit_caps_installs_but_forwards(netdev_world):
    _host, vs, _of, p1, _a1, _p2, a2, ctx = netdev_world
    dp = vs.dpif_netdev
    pkts = [_udp(sport=1000 + i) for i in range(6)]
    with faults.injecting(FaultPlan(flow_limit=0)), \
            trace.recording() as rec:
        dp.process_batch(pkts, p1.dp_port_no, ctx, ExactMatchCache())
    assert len(dp.megaflows) == 0
    assert rec.counter("dp.flow_limit_hit") == 6
    assert len(a2.take_transmitted()) == 6


def test_revalidator_tightens_then_relaxes_flow_limit(netdev_world):
    _host, vs, _of, p1, _a1, _p2, _a2, ctx = netdev_world
    dp = vs.dpif_netdev
    assert dp.flow_limit is None
    # Pressure: lost upcalls appear between revalidator passes.
    dp.stats.lost += 5
    stats = dp.revalidate()
    assert dp.flow_limit is not None
    tightened = dp.flow_limit
    assert stats["flow_limit"] == tightened
    # Calm: the limit creeps back up and eventually lifts.
    for _ in range(100):
        dp.revalidate()
        if dp.flow_limit is None:
            break
    assert dp.flow_limit is None


def test_revalidator_survives_raising_upcall_fn(netdev_world):
    _host, vs, _of, p1, _a1, _p2, _a2, ctx = netdev_world
    dp = vs.dpif_netdev
    dp.process_batch([_udp()], p1.dp_port_no, ctx, ExactMatchCache())
    assert len(dp.megaflows) == 1
    failed_before = dp.stats.failed_upcalls
    original = dp.upcall_fn

    def broken(key, c):
        raise RuntimeError("translator crashed")

    dp.upcall_fn = broken
    try:
        with trace.recording() as rec:
            stats = dp.revalidate()
    finally:
        dp.upcall_fn = original
    # The pass completed, evicted the unverifiable flow, and counted it.
    assert stats["removed_changed"] == 1
    assert dp.stats.failed_upcalls == failed_before + 1
    assert rec.counter("dp.revalidate_upcall_errors") == 1
    # The flow reinstalls on the next packet once translation works.
    dp.process_batch([_udp()], p1.dp_port_no, ctx, ExactMatchCache())
    assert len(dp.megaflows) == 1


# ======================================================================
# 2d. Kernel datapath and netlink lost accounting.
# ======================================================================
def _kernel_world():
    cpu = CpuModel(2)
    kernel = Kernel(cpu)
    kernel.load_ovs_module()
    dp = kernel.create_datapath("dp0")
    p1 = NetDevice("p1", mac(21))
    kernel.init_ns.register(p1)
    p1.set_up()
    dp.add_port(p1)
    return kernel, dp, p1, ExecContext(cpu, 0, CpuCategory.SOFTIRQ)


def test_kernel_upcall_overload_counts_lost():
    _kernel, dp, p1, ctx = _kernel_world()
    seen = []
    dp.upcall_handler = lambda up, c: seen.append(up)
    plan = FaultPlan(rules=[
        FaultRule("kernel.upcall_overload", nth=1, max_fires=1)])
    with faults.injecting(plan), trace.recording() as rec:
        p1.deliver(PKT, ctx)
        p1.deliver(PKT, ctx)
    assert dp.n_lost == 1
    assert len(seen) == 1
    assert rec.counter("kernel.upcall_lost") == 1


def test_kernel_missing_handler_counts_lost_not_noop():
    _kernel, dp, p1, ctx = _kernel_world()
    assert dp.upcall_handler is None
    p1.deliver(PKT, ctx)
    assert dp.n_lost == 1


def test_dpif_netlink_missing_upcall_fn_counts_lost():
    from repro.ovs.dpif_netlink import DpifNetlink

    cpu = CpuModel(2)
    kernel = Kernel(cpu)
    kernel.load_ovs_module()
    dpif = DpifNetlink(kernel)
    p1 = NetDevice("p1", mac(22))
    kernel.init_ns.register(p1)
    p1.set_up()
    dpif.add_port(p1)
    assert dpif.upcall_fn is None  # no handler thread registered yet
    ctx = ExecContext(cpu, 0, CpuCategory.SOFTIRQ)
    p1.deliver(PKT, ctx)
    # The kernel sent the miss up and nobody was listening: dpctl/show
    # must report it as lost, not silently succeed.
    assert dpif.dp.n_lost == 1


# ======================================================================
# 2e. Operator visibility: faults/show and truthful lost: columns.
# ======================================================================
def test_dpctl_show_lost_column_is_truthful(netdev_world):
    _host, vs, _of, p1, _a1, _p2, _a2, ctx = netdev_world
    appctl = OvsAppctl(vs)
    plan = FaultPlan(rules=[
        FaultRule("dp.upcall_overload", nth=1, max_fires=1)])
    with faults.injecting(plan):
        vs.dpif_netdev.process_batch([_udp()], p1.dp_port_no, ctx,
                                     ExactMatchCache())
    out = appctl.dpctl_show()
    assert "lost:1" in out
    assert f"missed:{vs.dpif_netdev.stats.upcalls}" in out


def test_faults_show_renders_plan_and_datapath_state(netdev_world):
    _host, vs, _of, p1, _a1, _p2, _a2, ctx = netdev_world
    appctl = OvsAppctl(vs)
    assert "(no fault plan installed)" in appctl.faults_show()
    plan = FaultPlan(seed=4, rules=[
        FaultRule("dp.upcall_overload", rate=1.0)])
    with faults.injecting(plan):
        vs.dpif_netdev.process_batch([_udp()], p1.dp_port_no, ctx,
                                     ExactMatchCache())
        out = appctl.faults_show()
    assert "seed=4" in out
    assert "dp.upcall_overload: rate=1.0 — events:1 fired:1" in out
    assert "lost:1" in out
    assert "flow-limit:" in out


def test_coverage_show_includes_fault_counters(netdev_world):
    _host, vs, _of, p1, _a1, _p2, _a2, ctx = netdev_world
    appctl = OvsAppctl(vs)
    plan = FaultPlan(rules=[FaultRule("dp.upcall_overload", nth=1,
                                      max_fires=1)])
    with faults.injecting(plan), trace.recording() as rec:
        vs.dpif_netdev.process_batch([_udp()], p1.dp_port_no, ctx,
                                     ExactMatchCache())
        out = appctl.coverage_show(rec)
    assert "fault.dp.upcall_overload" in out
    assert "dp.upcall_lost" in out


# ======================================================================
# 3. Whole-pipeline properties: equivalence and conservation.
# ======================================================================
def test_batched_and_reference_classification_agree_under_faults():
    from repro.experiments.degradation import run_degradation

    kwargs = dict(packets=160, n_flows=12, rates=(0.15,), seed=3)
    batched = [p.to_json() for p in run_degradation(**kwargs)]
    with _reference_mode():
        reference = [p.to_json() for p in run_degradation(**kwargs)]
    assert batched == reference


def test_degradation_curve_is_monotone_and_deterministic():
    from repro.experiments.degradation import run_degradation

    kwargs = dict(packets=200, n_flows=16, rates=(0.0, 0.1, 0.3), seed=5)
    points = run_degradation(**kwargs)
    again = run_degradation(**kwargs)
    assert [p.to_json() for p in points] == [p.to_json() for p in again]
    delivered = [p.delivered for p in points]
    assert delivered[0] == points[0].offered  # faultless baseline
    assert sorted(delivered, reverse=True) == delivered
    assert all(p.conserved for p in points)


_PROPERTY_POINTS = (
    "afxdp.tx_kick_eagain",
    "afxdp.fill_ring_overrun",
    "afxdp.comp_ring_overrun",
    "afxdp.umem_exhausted",
    "afxdp.zc_fallback",
    "dp.upcall_overload",
    "ebpf.map_lookup_fault",
    "ebpf.verifier_reject",
    "vswitchd.crash",
)


@settings(deadline=None, max_examples=10)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    rates=st.lists(st.sampled_from([0.0, 0.05, 0.2, 0.5]),
                   min_size=len(_PROPERTY_POINTS),
                   max_size=len(_PROPERTY_POINTS)),
    inv_prob=st.sampled_from([1, 2, 8]),
    cap=st.sampled_from([None, 0, 2]),
    flow_limit=st.sampled_from([None, 0, 4]),
)
def test_packet_conservation_for_any_seeded_plan(
        seed, rates, inv_prob, cap, flow_limit):
    """offered == forwarded + sum(named drop counters), whatever the
    plan throws at the pipeline."""
    from repro.experiments import degradation

    plan = FaultPlan(
        seed=seed,
        rules=[FaultRule(p, rate=r)
               for p, r in zip(_PROPERTY_POINTS, rates) if r > 0.0],
        emc_insert_inv_prob=inv_prob,
        upcall_queue_cap=cap,
        flow_limit=flow_limit,
    )
    point = degradation._run_point_traced(
        plan, 0.0, packets=96, n_flows=8, link_gbps=25.0,
        options=AfxdpOptions())
    assert point.conserved, point.to_json()
