"""Every example script runs to completion from a clean interpreter
namespace (runpy, like ``python examples/<name>.py``)."""

import io
import runpy
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def _run(name: str) -> str:
    buf = io.StringIO()
    argv = sys.argv
    sys.argv = [name]
    try:
        with redirect_stdout(buf):
            runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = argv
    return buf.getvalue()


def test_quickstart():
    out = _run("quickstart.py")
    assert "hairpinned" in out
    assert "EMC hits" in out
    assert "ip link show" in out


def test_nsx_deployment():
    out = _run("nsx_deployment.py")
    assert "Geneve tunnels     291" in out
    assert "datapath passes" in out
    assert "No kernel module. No reboot." in out


def test_xdp_load_balancer():
    out = _run("xdp_load_balancer.py")
    assert "verifier rejected a looping program" in out
    assert "matched packets bounced in the driver" in out


def test_container_networking():
    out = _run("container_networking.py")
    assert "rows: 42" in out
    assert "winner" in out


def test_datapath_comparison():
    out = _run("datapath_comparison.py")
    assert "does not exist" in out
    assert "Table 2" in out
