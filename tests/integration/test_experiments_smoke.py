"""Smoke tests: every experiment module runs end to end at tiny scale
and returns a structurally complete result."""

import pytest

from repro.experiments.fig1_loc_churn import run_fig1
from repro.experiments.fig2_single_flow import run_fig2
from repro.experiments.table2_optimizations import LADDER, run_table2
from repro.experiments.table3_ruleset import run_table3
from repro.experiments.table5_xdp_cost import run_table5


def test_fig1_smoke():
    result = run_fig1()
    assert set(result.dataset) == {2015, 2016, 2017, 2018, 2019}
    assert len(result.simulated) == 5
    assert "Figure 1" in result.render()


def test_fig2_smoke():
    result = run_fig2(packets=400)
    assert set(result.mpps) == {"kernel", "ebpf", "dpdk"}
    assert all(v > 0 for v in result.mpps.values())
    assert "Mpps" in result.render()


def test_table2_smoke():
    result = run_table2(packets=400)
    assert len(result.mpps) == len(LADDER)
    assert "Table 2" in result.render()


def test_table3_smoke_scaled():
    result = run_table3(target_rules=6_000)
    assert result.stats.n_rules == 6_000
    assert result.stats.n_tables == 40
    assert result.stats.n_match_fields == 31
    assert result.pipeline_passes >= 2
    assert "Table 3" in result.render()


def test_table5_smoke():
    result = run_table5(packets=400)
    assert set(result.mpps) == set("ABCD")
    assert result.mpps["A"] >= result.mpps["D"]
    assert "Table 5" in result.render()


def test_fig10_smoke():
    from repro.experiments.fig10_latency import run_fig10

    result = run_fig10(n_transactions=40)
    assert set(result.results) == {"kernel", "afxdp", "dpdk"}
    for r in result.results.values():
        assert r.p50_us <= r.p90_us <= r.p99_us
    assert "Figure 10" in result.render()


def test_fig11_smoke():
    from repro.experiments.fig11_container_latency import run_fig11

    result = run_fig11(n_transactions=40)
    assert result.results["dpdk"].p50_us > result.results["kernel"].p50_us
    assert "Figure 11" in result.render()


def test_fig12_smoke_one_point():
    from repro.experiments.fig12_multiqueue import Fig12Result, run_fig12

    result = run_fig12(packets_per_queue=200)
    assert isinstance(result, Fig12Result)
    assert result.mpps("dpdk", 64, 1) > 0
    assert "Figure 12" in result.render()


def test_fig9_smoke_p2p_only():
    from repro.experiments.fig9_forwarding import run_fig9

    result = run_fig9(packets=300, scenarios=("P2P",))
    assert result.mpps("P2P", "dpdk", 1) > result.mpps("P2P", "afxdp", 1)
    assert "Figure 9" in result.render_rates()
    assert "Table 4" in result.render_table4()


def test_fig8_smoke_panel_b():
    from repro.experiments.fig8_tcp_throughput import run_fig8

    result = run_fig8(panels=("b",), total_bytes=100_000)
    assert result.gbps[("b", "afxdp+vhost+csum+tso")] > 0
    assert "Figure 8b" in result.render("b")
