"""Smoke tests: every experiment module runs end to end at tiny scale
and returns a structurally complete result.

``TINY`` is the shared tiny-duration configuration: every smoke test
draws its scale knob from here so the whole battery stays fast and the
knobs live in one place.
"""

import importlib
import pkgutil

import pytest

from repro.experiments.fig1_loc_churn import run_fig1
from repro.experiments.fig2_single_flow import run_fig2
from repro.experiments.table2_optimizations import LADDER, run_table2
from repro.experiments.table3_ruleset import run_table3
from repro.experiments.table5_xdp_cost import run_table5

#: Shared tiny-duration scales (packets / transactions / bytes / rules).
TINY = {
    "packets": 400,
    "packets_per_queue": 200,
    "fig9_packets": 300,
    "transactions": 40,
    "tcp_bytes": 100_000,
    "rules": 6_000,
}


def test_every_experiment_module_is_smoke_covered():
    """Each runnable experiments/ module must have a smoke entry here.

    Guards against a new experiment landing without smoke coverage:
    enumerate the package and check this file mentions each module.
    """
    import repro.experiments as pkg

    with open(__file__) as f:
        source = f.read()
    for info in pkgutil.iter_modules(pkg.__path__):
        module = importlib.import_module(f"repro.experiments.{info.name}")
        assert module is not None
        if info.name == "common":
            continue  # shared harness, exercised by every other test
        assert info.name in source, (
            f"experiments/{info.name}.py has no smoke test"
        )


def test_fault_cells_smoke():
    from repro.experiments.fault_cells import merged_fault_ledger

    ledger = merged_fault_ledger(2, seed=3, packets=TINY["fig9_packets"])
    assert ledger["offered"] > ledger["forwarded"] > 0
    assert ledger["sinks"], "the seeded fault plan never fired"


def test_fig1_smoke():
    result = run_fig1()
    assert set(result.dataset) == {2015, 2016, 2017, 2018, 2019}
    assert len(result.simulated) == 5
    assert "Figure 1" in result.render()


def test_fig2_smoke():
    result = run_fig2(packets=TINY["packets"])
    assert set(result.mpps) == {"kernel", "ebpf", "dpdk"}
    assert all(v > 0 for v in result.mpps.values())
    assert "Mpps" in result.render()


def test_table2_smoke():
    result = run_table2(packets=TINY["packets"])
    assert len(result.mpps) == len(LADDER)
    assert "Table 2" in result.render()


def test_table3_smoke_scaled():
    result = run_table3(target_rules=TINY["rules"])
    assert result.stats.n_rules == TINY["rules"]
    assert result.stats.n_tables == 40
    assert result.stats.n_match_fields == 31
    assert result.pipeline_passes >= 2
    assert "Table 3" in result.render()


def test_table5_smoke():
    result = run_table5(packets=TINY["packets"])
    assert set(result.mpps) == set("ABCD")
    assert result.mpps["A"] >= result.mpps["D"]
    assert "Table 5" in result.render()


def test_fig10_smoke():
    from repro.experiments.fig10_latency import run_fig10

    result = run_fig10(n_transactions=TINY["transactions"])
    assert set(result.results) == {"kernel", "afxdp", "dpdk"}
    for r in result.results.values():
        assert r.p50_us <= r.p90_us <= r.p99_us
    assert "Figure 10" in result.render()


def test_fig11_smoke():
    from repro.experiments.fig11_container_latency import run_fig11

    result = run_fig11(n_transactions=TINY["transactions"])
    assert result.results["dpdk"].p50_us > result.results["kernel"].p50_us
    assert "Figure 11" in result.render()


def test_fig12_smoke_one_point():
    from repro.experiments.fig12_multiqueue import Fig12Result, run_fig12

    result = run_fig12(packets_per_queue=TINY["packets_per_queue"])
    assert isinstance(result, Fig12Result)
    assert result.mpps("dpdk", 64, 1) > 0
    assert "Figure 12" in result.render()


def test_fig9_smoke_p2p_only():
    from repro.experiments.fig9_forwarding import run_fig9

    result = run_fig9(packets=TINY["fig9_packets"], scenarios=("P2P",))
    assert result.mpps("P2P", "dpdk", 1) > result.mpps("P2P", "afxdp", 1)
    assert "Figure 9" in result.render_rates()
    assert "Table 4" in result.render_table4()


def test_fig8_smoke_panel_b():
    from repro.experiments.fig8_tcp_throughput import run_fig8

    result = run_fig8(panels=("b",), total_bytes=TINY["tcp_bytes"])
    assert result.gbps[("b", "afxdp+vhost+csum+tso")] > 0
    assert "Figure 8b" in result.render("b")


def test_degradation_smoke():
    from repro.experiments.degradation import run_degradation

    points = run_degradation(packets=TINY["packets"] // 2, n_flows=16,
                             rates=(0.0, 0.2), seed=0)
    baseline, faulted = points
    assert baseline.delivered == baseline.offered
    assert not baseline.faults_fired
    assert faulted.delivered < baseline.delivered
    assert faulted.conserved and baseline.conserved


def test_upgrade_smoke():
    from repro.experiments.upgrade import run_upgrade

    results = run_upgrade(packets=TINY["packets"],
                          scenarios=("kernel", "ebpf"))
    by_name = {r.scenario: r for r in results}
    assert by_name["kernel"].restarts == 1
    assert by_name["kernel"].lost == 0  # warm megaflows carry the outage
    assert by_name["ebpf"].downtime_ns > 0
    assert all(r.conserved for r in results)


def test_observer_effect_smoke():
    from repro.experiments.observer_effect import run_observer_effect

    points = run_observer_effect(packets=TINY["packets"] // 2, n_flows=16,
                                 rates=(0, 8), datapaths=("afxdp_zc",),
                                 seed=0)
    off, sampled = points
    assert off.sampled == 0 and sampled.sampled > 0
    assert sampled.ns_per_packet > off.ns_per_packet
    assert all(p.reconciled and p.conserved for p in points)
    assert off.flow_records == sampled.flow_records == 16


def test_p2p_benches_smoke():
    """The p2p bench module directly: every datapath flavour forwards."""
    from repro.experiments.p2p import (afxdp_p2p, dpdk_p2p, ebpf_p2p,
                                       kernel_p2p)
    from repro.traffic.trex import FlowSpec, TrexStream

    for factory in (kernel_p2p, ebpf_p2p):
        bench = factory()
        m = bench.drive(TrexStream(FlowSpec(1)), TINY["packets"])
        assert m.mpps > 0
    for factory in (afxdp_p2p, dpdk_p2p):
        bench = factory()
        m = bench.drive(TrexStream(FlowSpec(1)), TINY["packets"])
        assert m.mpps > 0


def test_pvp_pcp_benches_smoke():
    """The pvp_pcp loopback benches: VM and container paths forward."""
    from repro.experiments.pvp_pcp import afxdp_pvp, kernel_pcp
    from repro.traffic.trex import FlowSpec, TrexStream

    pvp = afxdp_pvp()
    m = pvp.drive(TrexStream(FlowSpec(1)), TINY["packets"] // 2)
    assert m.mpps > 0
    pcp = kernel_pcp()
    m = pcp.drive(
        TrexStream(FlowSpec(1, vary_dst=False)), TINY["packets"] // 2
    )
    assert m.mpps > 0
