"""Determinism of the simulation and the lossless-rate machinery."""

import pytest

from repro.experiments.p2p import afxdp_p2p, dpdk_p2p
from repro.traffic.trex import FlowSpec, TrexStream


class TestDeterminism:
    def test_identical_runs_identical_numbers(self):
        """Seeded RNG + virtual time = bit-identical measurements."""
        def run():
            bench = afxdp_p2p(link_gbps=10)
            return bench.drive(TrexStream(FlowSpec(64), frame_len=64),
                               800).mpps

        assert run() == run()

    def test_latency_distributions_deterministic(self):
        from repro.experiments.fig11_container_latency import run_fig11

        a = run_fig11(n_transactions=50)
        b = run_fig11(n_transactions=50)
        assert a.results["dpdk"].p99_us == b.results["dpdk"].p99_us

    def test_stream_seed_changes_flows(self):
        s1 = TrexStream(FlowSpec(100), seed=1)
        s2 = TrexStream(FlowSpec(100), seed=2)
        assert s1.next_packet().data != s2.next_packet().data


class TestVaryDst:
    def test_fixed_destination_spec(self):
        stream = TrexStream(FlowSpec(50, vary_dst=False), frame_len=64)
        dsts = {stream.next_packet().data[30:34] for _ in range(100)}
        assert len(dsts) == 1
        srcs = {stream.next_packet().data[26:30] for _ in range(100)}
        assert len(srcs) > 20


class TestLossDetection:
    def test_ring_overflow_counts_missed(self):
        """Offered load beyond the ring's capacity shows up as 'missed'
        frames — the signal the TRex lossless search keys off."""
        bench = dpdk_p2p(link_gbps=25)
        nic = bench.nic_in
        nic.ring_size = 64
        stream = TrexStream(FlowSpec(1), frame_len=64)
        # Blast 200 frames with nobody draining the ring.
        accepted = sum(1 for pkt in stream.burst(200)
                       if nic.host_receive(pkt))
        assert accepted == 64
        assert nic.rx_missed == 136

    def test_no_loss_when_serviced(self):
        bench = afxdp_p2p(link_gbps=10)
        bench.drive(TrexStream(FlowSpec(1), frame_len=64), 2_000)
        assert bench.nic_in.rx_missed == 0


class TestVSwitchdPortTypes:
    def test_dpdk_and_vhost_ports_via_vswitchd(self):
        from repro.dpdk.ethdev import bind_device
        from repro.hosts.host import Host
        from repro.hosts.vm import VirtualMachine

        host = Host("ports", n_cpus=4)
        host.add_nic("ens1")
        vs = host.install_ovs("netdev")
        vs.add_bridge("br0")
        eth = bind_device(host.kernel.init_ns, "ens1")
        dpdk_port = vs.add_dpdk_port("br0", eth)
        vm = VirtualMachine(host, "vm1", "10.0.0.5", vcpu_core=2)
        vhost_port = vs.add_vhostuser_port("br0", vm.attach_vhostuser())
        assert vs.bridge("br0").port("ens1") is dpdk_port
        assert vs.bridge("br0").port("vhost-vm1") is vhost_port
        # OVSDB recorded the types.
        [iface] = vs.ovsdb.find("Interface", name="ens1")
        assert iface["type"] == "dpdk"
        [iface] = vs.ovsdb.find("Interface", name="vhost-vm1")
        assert iface["type"] == "dpdkvhostuser"

    def test_port_types_rejected_on_kernel_datapath(self):
        from repro.hosts.host import Host

        host = Host("sys", n_cpus=2)
        vs = host.install_ovs("system")
        vs.add_bridge("br0")
        with pytest.raises(ValueError, match="netdev datapath"):
            vs.add_afxdp_port("br0", host.add_nic("ens1"))
