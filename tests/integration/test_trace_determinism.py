"""Trace regression gates: byte-identical ledgers across identical runs
and cost conservation on real experiment runs (the acceptance bar for
the observability layer)."""

import pytest

from repro.sim import trace


def _fig9_ledger(packets: int = 300) -> str:
    from repro.experiments.fig9_forwarding import run_fig9

    with trace.recording() as rec:
        run_fig9(packets=packets, scenarios=("P2P",))
    return rec.ledger()


def test_fig9_ledgers_are_byte_identical():
    assert _fig9_ledger() == _fig9_ledger()


def test_ledger_differs_when_the_run_differs():
    # Sanity for the regression above: the ledger is not trivially empty
    # or constant.
    a, b = _fig9_ledger(packets=300), _fig9_ledger(packets=400)
    assert a and b and a != b


@pytest.mark.parametrize("experiment", ["fig2", "fig9", "table2"])
def test_experiment_runs_conserve_cost(experiment):
    with trace.recording() as rec:
        if experiment == "fig2":
            from repro.experiments.fig2_single_flow import run_fig2

            run_fig2(packets=400)
        elif experiment == "fig9":
            from repro.experiments.fig9_forwarding import run_fig9

            run_fig9(packets=300, scenarios=("P2P",))
        else:
            from repro.experiments.table2_optimizations import run_table2

            run_table2(packets=400)
    assert rec.total_ns > 0
    assert rec.conserved(), (
        f"{experiment}: spans {rec.total_ns!r} ns != "
        f"cpu {rec.cpu_charged_ns!r} ns"
    )
