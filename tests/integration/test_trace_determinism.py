"""Trace regression gates: byte-identical ledgers across identical runs
and cost conservation on real experiment runs (the acceptance bar for
the observability layer).

The batched-vs-reference gates additionally pin the burst classifier's
observational-equivalence contract at full-experiment scale: running an
experiment with batching plus every wall-clock memo layer must produce
the byte-identical trace ledger the per-packet reference path produces.
"""

import contextlib

import pytest

from repro.ovs import dpif_netdev
from repro.sim import fastpath, trace


@contextlib.contextmanager
def _reference_mode():
    """Run with burst classification and all wall-clock memos off —
    the pre-batching observable behaviour."""
    prev = dpif_netdev.BATCH_CLASSIFY
    dpif_netdev.BATCH_CLASSIFY = False
    try:
        with fastpath.disabled():
            yield
    finally:
        dpif_netdev.BATCH_CLASSIFY = prev


def _experiment_ledger(experiment: str, packets: int) -> str:
    with trace.recording() as rec:
        if experiment == "fig2":
            from repro.experiments.fig2_single_flow import run_fig2

            run_fig2(packets=packets)
        elif experiment == "fig9":
            from repro.experiments.fig9_forwarding import run_fig9

            run_fig9(packets=packets, scenarios=("P2P",))
        else:
            from repro.experiments.table2_optimizations import run_table2

            run_table2(packets=packets)
    return rec.ledger()


def _fig9_ledger(packets: int = 300) -> str:
    return _experiment_ledger("fig9", packets)


def test_fig9_ledgers_are_byte_identical():
    assert _fig9_ledger() == _fig9_ledger()


@pytest.mark.parametrize("experiment,packets",
                         [("fig2", 400), ("fig9", 300), ("table2", 400)])
def test_batched_ledger_matches_reference(experiment, packets):
    batched = _experiment_ledger(experiment, packets)
    with _reference_mode():
        reference = _experiment_ledger(experiment, packets)
    assert batched == reference


def test_ledger_differs_when_the_run_differs():
    # Sanity for the regression above: the ledger is not trivially empty
    # or constant.
    a, b = _fig9_ledger(packets=300), _fig9_ledger(packets=400)
    assert a and b and a != b


@pytest.mark.parametrize("experiment", ["fig2", "fig9", "table2"])
def test_experiment_runs_conserve_cost(experiment):
    with trace.recording() as rec:
        if experiment == "fig2":
            from repro.experiments.fig2_single_flow import run_fig2

            run_fig2(packets=400)
        elif experiment == "fig9":
            from repro.experiments.fig9_forwarding import run_fig9

            run_fig9(packets=300, scenarios=("P2P",))
        else:
            from repro.experiments.table2_optimizations import run_table2

            run_table2(packets=400)
    assert rec.total_ns > 0
    assert rec.conserved(), (
        f"{experiment}: spans {rec.total_ns!r} ns != "
        f"cpu {rec.cpu_charged_ns!r} ns"
    )
