"""Cross-datapath invariants of ``matrix.json`` (the paper's ordering).

Asserted over a freshly swept quick grid *and* over the committed
``BASELINE_matrix.json``:

* §5.2 / Fig. 9 ordering at 64B single-flow cells:
  DPDK >= AF_XDP zero-copy >= AF_XDP copy >= kernel;
* flow diversity never makes a *lane* faster: the per-busy-lane rate is
  non-increasing in flow count.  (The total rate may legitimately rise
  for the kernel datapath — RSS spreads 1000 flows over 10 IRQ lanes —
  so the total-rate version of the invariant only binds when the lane
  count does not grow.)
* the emitted document is schema-valid and covers the advertised grid.
"""

import json
import pathlib

import pytest

from repro.perfmatrix.matrix import QUICK_GRID, MatrixGrid, run_matrix
from repro.perfmatrix.schema import validate_matrix

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
BASELINE = REPO_ROOT / "BASELINE_matrix.json"

#: The exact CI grid — same budget as the baseline, so the fresh sweep
#: must reproduce the committed rates bit-for-bit (determinism) and the
#: gate comparator must find nothing to flag.
GRID = QUICK_GRID


@pytest.fixture(scope="module")
def fresh_doc():
    return run_matrix(GRID)


@pytest.fixture(scope="module")
def baseline_doc():
    return json.loads(BASELINE.read_text())


@pytest.fixture(scope="module", params=["fresh", "baseline"])
def doc(request, fresh_doc, baseline_doc):
    return fresh_doc if request.param == "fresh" else baseline_doc


def _cells(doc):
    return {c["id"]: c for c in doc["cells"]}


def test_schema_valid(doc):
    assert validate_matrix(doc) == []


def test_grid_coverage(doc):
    """The acceptance floor: >= 3 datapaths x 2 topologies x 2 packet
    sizes x 2 flow counts, every supported grid point present."""
    cells = doc["cells"]
    assert len({c["datapath"] for c in cells}) >= 3
    assert len({c["topology"] for c in cells}) >= 2
    assert len({c["frame_len"] for c in cells}) >= 2
    assert len({c["n_flows"] for c in cells}) >= 2
    grid = doc["grid"]
    expected = (len(grid["datapaths"]) * len(grid["topologies"])
                * len(grid["frame_lens"]) * len(grid["flow_counts"]))
    skipped_pairs = {(s["datapath"], s["topology"])
                     for s in doc["skipped"]}
    expected -= (len(skipped_pairs)
                 * len(grid["frame_lens"]) * len(grid["flow_counts"]))
    assert len(cells) == expected


def test_paper_ordering_at_64b_single_flow(doc):
    """DPDK >= AF_XDP zc >= AF_XDP copy >= kernel (Fig. 9, §5.2)."""
    cells = _cells(doc)
    ranking = ("dpdk", "afxdp_zc", "afxdp_copy", "kernel")
    checked = 0
    for topo in {c["topology"] for c in doc["cells"]}:
        rates = []
        for dp in ranking:
            cell = cells.get(f"{topo.lower()}/{dp}/64B/1f")
            if cell is not None:
                rates.append((dp, cell["rate_mpps"]))
        if len(rates) < 2:
            continue
        checked += 1
        for (fast_dp, fast), (slow_dp, slow) in zip(rates, rates[1:]):
            assert fast >= slow, (
                f"{topo}: {fast_dp} ({fast:.3f} Mpps) should not be "
                f"slower than {slow_dp} ({slow:.3f} Mpps)"
            )
    assert checked, "no 64B/1-flow cells to rank"


def test_per_lane_rate_non_increasing_in_flow_count(doc):
    cells = _cells(doc)
    flow_counts = sorted(doc["grid"]["flow_counts"])
    checked = 0
    for cell in doc["cells"]:
        if cell["n_flows"] != flow_counts[0]:
            continue
        for flows in flow_counts[1:]:
            other = cells.get(
                f"{cell['topology'].lower()}/{cell['datapath']}"
                f"/{cell['frame_len']}B/{flows}f")
            if other is None:
                continue
            checked += 1
            lean = cell["rate_mpps"] / cell["n_busy_lanes"]
            fat = other["rate_mpps"] / other["n_busy_lanes"]
            assert fat <= lean + 1e-9, (
                f"{other['id']}: per-lane rate rose with flow diversity "
                f"({lean:.4f} -> {fat:.4f} Mpps/lane)"
            )
            if other["n_busy_lanes"] <= cell["n_busy_lanes"]:
                assert other["rate_mpps"] <= cell["rate_mpps"] + 1e-9, (
                    f"{other['id']}: total rate rose with flow count "
                    f"without extra lanes"
                )
    assert checked, "no flow-count pairs to compare"


def test_search_traces_did_bisect(doc):
    """Uncapped cells carry a real search trace (>= 2 probes, tight
    bracket); line-capped cells converge on the first probe."""
    for cell in doc["cells"]:
        search = cell["search"]
        assert search["converged"], cell["id"]
        if cell["capped_by_line"]:
            assert search["trace"][0]["lossless"], cell["id"]
        else:
            assert search["iterations"] >= 2, cell["id"]
            lo, hi = search["bracket"]
            assert hi - lo <= doc["grid"]["resolution_mpps"] + 1e-9, (
                cell["id"])


def test_fresh_matches_baseline_through_the_gate(fresh_doc, baseline_doc):
    """The in-repo sweep reproduces the committed baseline through the
    gate's own comparator — the same check CI's perf-matrix job runs."""
    from repro.tools.matrix_gate import compare

    assert compare(baseline_doc, fresh_doc) == []


def test_fresh_rates_are_bit_identical_to_baseline(fresh_doc,
                                                   baseline_doc):
    """Determinism, end to end: same grid, same budget, same floats."""
    fresh = {c["id"]: c["rate_mpps"] for c in fresh_doc["cells"]}
    base = {c["id"]: c["rate_mpps"] for c in baseline_doc["cells"]}
    assert fresh == base
