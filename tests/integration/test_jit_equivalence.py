"""JIT observability gates at full-experiment scale.

The JIT's contract is that compiled execution is invisible to every
observable: for each experiment (fig2, fig9, table2, table5) a run with
the JIT enabled must produce the byte-identical trace ledger, the same
counter map, and the byte-identical collapsed-stack flamegraph as a run
with the JIT disabled (interpreter + verdict memo).  table5 — the
all-XDP workload, where virtually every charged nanosecond flows
through the engine under test — is additionally pinned against the full
reference mode (no fastpath layers at all).
"""

import contextlib

import pytest

from repro.ebpf import jit
from repro.ovs import dpif_netdev, dpjit
from repro.sim import fastpath, profile
from repro.sim.profile import collapse

PACKETS = {"fig2": 400, "fig9": 300, "table2": 400, "table5": 500}


def _run_experiment(experiment: str, packets: int) -> None:
    if experiment == "fig2":
        from repro.experiments.fig2_single_flow import run_fig2

        run_fig2(packets=packets)
    elif experiment == "fig9":
        from repro.experiments.fig9_forwarding import run_fig9

        run_fig9(packets=packets, scenarios=("P2P",))
    elif experiment == "table2":
        from repro.experiments.table2_optimizations import run_table2

        run_table2(packets=packets)
    else:
        from repro.experiments.table5_xdp_cost import run_table5

        run_table5(packets=packets)


@contextlib.contextmanager
def _reference_mode():
    """Everything off: no burst classify, no memos, no JIT."""
    prev = dpif_netdev.BATCH_CLASSIFY
    dpif_netdev.BATCH_CLASSIFY = False
    try:
        with fastpath.disabled():
            yield
    finally:
        dpif_netdev.BATCH_CLASSIFY = prev


def _observe(experiment: str, jit_on: bool = True, dpjit_on: bool = True):
    """One profiled run -> (ledger, counters, collapsed flamegraph)."""
    with contextlib.ExitStack() as stack:
        if not jit_on:
            stack.enter_context(jit.disabled())
        if not dpjit_on:
            stack.enter_context(dpjit.disabled())
        rec = stack.enter_context(profile.profiling())
        _run_experiment(experiment, PACKETS[experiment])
    return rec.ledger(), dict(rec.counters), collapse(rec.profiler.root)


@pytest.mark.parametrize("experiment", sorted(PACKETS))
def test_jit_run_is_byte_identical_to_interpreter_run(experiment):
    led_jit, counters_jit, flame_jit = _observe(experiment, jit_on=True)
    led_off, counters_off, flame_off = _observe(experiment, jit_on=False)
    assert led_jit == led_off
    assert counters_jit == counters_off
    assert flame_jit == flame_off
    # Sanity: the gate compares something real.
    assert led_jit and flame_jit
    assert counters_jit.get("ebpf.runs", 0) > 0


def test_table5_jit_matches_full_reference_mode():
    """table5 was not covered by PR 2's batched-vs-reference gates; the
    JIT-on ledger must match a run with every fastpath layer stripped."""
    led_jit, counters_jit, _ = _observe("table5", jit_on=True)
    with _reference_mode():
        led_ref, counters_ref, _ = _observe("table5", jit_on=True)
    assert led_jit == led_ref
    assert counters_jit == counters_ref


@pytest.mark.parametrize("experiment", sorted(PACKETS))
def test_dpjit_run_is_byte_identical_to_generic_walk(experiment):
    """Same contract for the megaflow dp-JIT: compiled action closures
    must be invisible to the ledger, counters, and flames."""
    dispatched_before = dpjit.STATS.dispatched
    led_on, counters_on, flame_on = _observe(experiment)
    dispatched = dpjit.STATS.dispatched - dispatched_before
    led_off, counters_off, flame_off = _observe(experiment,
                                                dpjit_on=False)
    assert led_on == led_off
    assert counters_on == counters_off
    assert flame_on == flame_off
    assert led_on and flame_on
    if experiment != "table5":
        # table5 is pure XDP — no DpifNetdev, so no dp dispatch there.
        assert dispatched > 0


def test_dpjit_actually_compiled_the_dp_experiments():
    """Vacuousness guard: fig2's datapath flows must run through
    compiled closures, not fall back to the generic walk."""
    dpjit.reset_stats()
    _run_experiment("fig2", PACKETS["fig2"])
    s = dpjit.STATS
    assert s.compiled > 0 and s.dispatched > 0, (
        s.compiled, s.declined, s.dispatched, s.decline_reasons)


def test_jit_actually_ran_the_experiments():
    """Guard against the gate passing vacuously because every run fell
    back to the interpreter: table5's four programs must all execute
    through compiled code with zero declines."""
    jit.reset_stats()
    _run_experiment("table5", PACKETS["table5"])
    stats = jit.stats()
    ran = {name: st for name, st in stats.items() if st.jit_runs}
    assert len(ran) >= 4, stats
    assert all(st.declined is None for st in stats.values()), stats
