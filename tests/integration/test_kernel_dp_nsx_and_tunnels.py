"""The Figure 7a configuration: NSX + tunnels on the *kernel* datapath."""

import pytest

from repro.hosts.host import Host
from repro.kernel.netdev import NetDevice
from repro.net.addresses import MacAddress, int_to_ip, ip_to_int
from repro.net.builder import make_udp_packet
from repro.net.tunnel import decapsulate
from repro.nsx.agent import NsxAgent
from repro.ovs.match import Match
from repro.ovs.ofactions import OutputAction
from repro.ovs.openflow import OpenFlowConnection
from repro.sim.cpu import CpuCategory, ExecContext


def mac(i):
    return MacAddress.local(i)


class TestKernelDatapathTunnels:
    def test_tunnel_output_through_kernel_dp(self):
        """Translation resolves the route/ARP and the *kernel executor*
        performs the Geneve encapsulation."""
        host = Host("kv", n_cpus=4)
        nic = host.add_nic("ens1")
        host.kernel.init_ns.add_address("ens1", "192.168.1.1", 24)
        host.kernel.init_ns.neighbors.update(
            ip_to_int("192.168.1.2"), mac(44), nic.ifindex, permanent=True)
        vs = host.install_ovs("system")
        vs.add_bridge("br0")
        vs.add_system_port("br0", nic)
        vif = NetDevice("vif1", mac(10))
        host.kernel.init_ns.register(vif)
        vif.set_up()
        p_vif = vs.add_system_port("br0", vif)
        vs.add_tunnel_port("br0", "geneve0", "geneve", "192.168.1.2",
                           key=55)
        of = OpenFlowConnection(vs.bridge("br0"))
        of.add_flow(0, 10, Match(in_port=p_vif.ofport),
                    [OutputAction("geneve0")])

        sent = []
        nic._transmit = lambda pkt, c: (sent.append(pkt), True)[1]
        ctx = ExecContext(host.cpu, 0, CpuCategory.SOFTIRQ)
        inner = make_udp_packet(mac(10), mac(11), "10.0.0.1", "10.0.0.2")
        vif.deliver(inner, ctx)
        assert len(sent) == 1
        ttype, vni, src, dst, inner_bytes = decapsulate(sent[0].data)
        assert (ttype, vni) == ("geneve", 55)
        assert int_to_ip(src) == "192.168.1.1"
        assert inner_bytes == inner.data
        # Second packet: pure kernel fast path, no further upcalls.
        upcalls = vs.dpif_netlink.dp.n_upcalls
        vif.deliver(inner.clone(), ctx)
        assert vs.dpif_netlink.dp.n_upcalls == upcalls
        assert len(sent) == 2


class TestNsxOnKernelDatapath:
    def test_deploy_and_forward(self):
        """The pre-migration world: same agent, same rules, same traffic —
        on the kernel module (Figure 7a)."""
        host = Host("hv-kernel", n_cpus=8)
        nic = host.add_nic("ens1")
        host.kernel.init_ns.add_address("ens1", "192.168.1.1", 16)
        vs = host.install_ovs("system")
        vs.add_bridge(NsxAgent.INTEGRATION_BRIDGE)
        uplink = vs.add_system_port(NsxAgent.INTEGRATION_BRIDGE, nic)

        agent = NsxAgent(vs)
        vif_ports = {}
        devices = {}
        for vif in agent.topo.vifs[:4]:
            dev = NetDevice(f"vif{vif.vif_id}", vif.mac)
            host.kernel.init_ns.register(dev)
            dev.set_up()
            vif_ports[vif.vif_id] = vs.add_system_port(
                NsxAgent.INTEGRATION_BRIDGE, dev)
            devices[vif.vif_id] = dev
        stats = agent.deploy(uplink, vif_ports, target_rules=6_000)
        assert stats.n_tables == 40
        assert stats.n_match_fields == 31

        # Same-switch VIF to VIF through the distributed firewall.
        vifs = [v for v in agent.topo.vifs if v.vif_id in vif_ports]
        src, dst = next(
            (a, b) for a in vifs for b in vifs
            if a is not b and a.logical_switch == b.logical_switch)
        out = []
        devices[dst.vif_id]._transmit = (
            lambda pkt, c: (out.append(pkt), True)[1])
        ctx = ExecContext(host.cpu, 0, CpuCategory.SOFTIRQ)
        pkt = make_udp_packet(src.mac, dst.mac, src.ip, dst.ip, 1000, 2000)
        devices[src.vif_id].deliver(pkt, ctx)
        assert len(out) == 1
        # The firewall state lives in the KERNEL's conntrack here.
        assert len(host.kernel.init_ns.conntrack) == 1
        # And the kernel datapath now holds installed megaflows.
        assert len(vs.dpif_netlink.dp.flows) >= 2

    def test_same_rules_both_datapaths_same_decision(self):
        """The migration invariant: identical OpenFlow state yields the
        same forwarding on the kernel and userspace datapaths."""
        def build(datapath_type):
            host = Host(f"h-{datapath_type}", n_cpus=4)
            vs = host.install_ovs(datapath_type)
            vs.add_bridge("br0")
            return host, vs

        pkt = make_udp_packet(mac(1), mac(2), "10.0.0.1", "10.0.0.2",
                              7, 8)

        # Userspace.
        host_u, vs_u = build("netdev")
        p1, _a1 = vs_u.add_sim_port("br0", "p1")
        _p2, a2 = vs_u.add_sim_port("br0", "p2")
        of = OpenFlowConnection(vs_u.bridge("br0"))
        of.add_flow(0, 10, Match(nw_proto=17, tp_dst=8),
                    [OutputAction("p2")])
        from repro.ovs.emc import ExactMatchCache

        ctx = ExecContext(host_u.cpu, 0, CpuCategory.USER)
        vs_u.dpif_netdev.process_batch([pkt.clone()], p1.dp_port_no, ctx,
                                       ExactMatchCache())
        userspace_delivered = len(a2.take_transmitted())

        # Kernel.
        host_k, vs_k = build("system")
        d1 = NetDevice("p1", mac(21))
        d2 = NetDevice("p2", mac(22))
        for d in (d1, d2):
            host_k.kernel.init_ns.register(d)
            d.set_up()
        vs_k.add_system_port("br0", d1)
        vs_k.add_system_port("br0", d2)
        OpenFlowConnection(vs_k.bridge("br0")).add_flow(
            0, 10, Match(nw_proto=17, tp_dst=8), [OutputAction("p2")])
        sent = []
        d2._transmit = lambda pkt, c: (sent.append(pkt), True)[1]
        kctx = ExecContext(host_k.cpu, 0, CpuCategory.SOFTIRQ)
        d1.deliver(pkt.clone(), kctx)
        assert len(sent) == userspace_delivered == 1
