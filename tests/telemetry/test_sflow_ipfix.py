"""sFlow sampling and IPFIX export unit contracts.

Coupled selection (low-rate samples nest inside high-rate samples under
one seed), charge gating (rate test on every packet, scrape/encode only
on taken samples, nothing at all with no session), virtual-clock flow
expiry, collector-loss accounting, and byte-determinism of the export
stream and the sampled-header pcap.
"""

import pytest

from repro import telemetry
from repro.experiments.observer_effect import _run_cell
from repro.experiments.p2p import kernel_p2p
from repro.net.addresses import MacAddress
from repro.net.builder import make_udp_packet
from repro.sim import faults, trace
from repro.sim.costs import DEFAULT_COSTS
from repro.sim.cpu import CpuCategory, CpuModel, ExecContext
from repro.sim.faults import FaultPlan, FaultRule
from repro.telemetry import IpfixConfig, SflowConfig, Telemetry
from repro.telemetry.drops import DropReason
from repro.telemetry.ipfix import IpfixExporter
from repro.telemetry.sflow import SflowSampler
from repro.traffic.trex import FlowSpec, TrexStream


def _pkt(sport=1000):
    return make_udp_packet(MacAddress.local(1), MacAddress.local(2),
                           "10.0.0.1", "10.0.0.2", sport, 2000,
                           frame_len=64)


PKT = _pkt()


# ======================================================================
# Configuration validation.
# ======================================================================
def test_config_validation():
    with pytest.raises(ValueError):
        SflowConfig(rate=0)
    with pytest.raises(ValueError):
        SflowConfig(rate=8, points=("nope",))
    with pytest.raises(ValueError):
        IpfixConfig(active_timeout_ns=0)
    with pytest.raises(ValueError):
        IpfixConfig(idle_timeout_ns=-1)


def test_nested_install_is_rejected():
    with telemetry.monitoring(Telemetry()):
        with pytest.raises(RuntimeError):
            telemetry.install(Telemetry())
    assert telemetry.ACTIVE is None


# ======================================================================
# Coupled, deterministic sampling.
# ======================================================================
def _sampled_indexes(rate, n=300, seed=5):
    sampler = SflowSampler(SflowConfig(rate=rate, points=("dpif",),
                                       seed=seed))
    taken = set()
    for i in range(n):
        if sampler.observe("dpif", PKT.data, None, lambda: 0) is not None:
            taken.add(i)
    return taken


def test_coupled_selection_nests_across_rates():
    """Same seed: the 1/1024 samples are a subset of the 1/8 samples are
    a subset of the 1/1 samples — the observer-effect curve's monotone-
    by-construction property."""
    s1024, s8, s1 = (_sampled_indexes(r) for r in (1024, 8, 1))
    assert s1024 <= s8 <= s1
    assert s1 == set(range(300))
    assert 0 < len(s8) < 300


def test_selection_is_deterministic_per_seed():
    assert _sampled_indexes(8, seed=5) == _sampled_indexes(8, seed=5)
    assert _sampled_indexes(8, seed=5) != _sampled_indexes(8, seed=6)


def test_rate_test_charged_always_scrape_only_on_samples():
    cpu = CpuModel(1)
    ctx = ExecContext(cpu, 0, CpuCategory.USER)
    costs = DEFAULT_COSTS
    with trace.recording():
        never = SflowSampler(SflowConfig(rate=10 ** 9, points=("dpif",)))
        before = cpu.busy_ns()
        assert never.observe("dpif", PKT.data, ctx, lambda: 0) is None
        assert cpu.busy_ns() - before == costs.sflow_sample_test_ns

        always = SflowSampler(SflowConfig(rate=1, points=("dpif",)))
        before = cpu.busy_ns()
        sample = always.observe("dpif", PKT.data, ctx, lambda: 7)
        assert cpu.busy_ns() - before == (costs.sflow_sample_test_ns
                                          + costs.sflow_header_scrape_ns
                                          + costs.sflow_encode_ns)
    assert sample.ts_ns == 7
    assert sample.frame_len == len(PKT.data)
    assert sample.header == PKT.data[:128]


def test_header_scrape_truncates_to_the_configured_length():
    sampler = SflowSampler(SflowConfig(rate=1, points=("dpif",),
                                       header_bytes=16))
    sample = sampler.observe("dpif", PKT.data, None, lambda: 0)
    assert sample.header == PKT.data[:16]


# ======================================================================
# IPFIX expiry on the virtual clock.
# ======================================================================
def test_idle_timeout_expires_a_quiet_flow():
    exp = IpfixExporter(IpfixConfig(active_timeout_ns=1000,
                                    idle_timeout_ns=500))
    pkt = _pkt()
    exp.update(pkt, 0, None)
    exp.update(pkt, 400, None)  # still live; idle deadline moves to 900
    assert exp.collector.flow_records == 0
    exp.update(pkt, 900, None)  # sweep: idle deadline reached
    assert exp.collector.flow_records == 1
    assert b"packets=2" in exp.collector.stream_bytes()
    exp.flush_all()  # the re-cached third packet
    assert exp.collector.flow_records == 2
    assert exp.collector.flow_packets == 3


def test_active_timeout_flushes_a_busy_flow():
    exp = IpfixExporter(IpfixConfig(active_timeout_ns=1000,
                                    idle_timeout_ns=10 ** 9))
    pkt = _pkt()
    for t in (0, 300, 600, 900):
        exp.update(pkt, t, None)
    assert exp.collector.flow_records == 0
    exp.update(pkt, 1000, None)  # active deadline despite the traffic
    assert exp.collector.flow_records == 1
    assert b"packets=4" in exp.collector.stream_bytes()


def test_flows_key_on_in_port_and_five_tuple():
    exp = IpfixExporter(IpfixConfig())
    a, b = _pkt(1000), _pkt(2000)
    a.meta.in_port = 1
    exp.update(a, 0, None)
    exp.update(b, 0, None)
    exp.update(a, 10, None)
    assert len(exp.cache) == 2
    exp.flush_all()
    assert exp.collector.flow_records == 2
    assert exp.collector.flow_packets == 3
    assert b"in_port=1" in exp.collector.stream_bytes()


def test_collector_loss_fault_lands_in_the_lost_tallies():
    exp = IpfixExporter(IpfixConfig())
    exp.update(_pkt(), 0, None)
    exp.note_drop(DropReason.NIC_RX_MISSED, 3, 192)
    plan = FaultPlan(rules=[
        FaultRule("telemetry.collector_loss", rate=1.0)])
    with faults.injecting(plan):
        exp.flush_all()
    # Exported on the exporter's side, lost on the wire: the split the
    # reconciliation invariant checks.
    assert exp.exported_flow_records == 1
    assert exp.exported_drop_records == 1
    assert exp.lost_flow_records == 1
    assert exp.lost_drop_records == 1
    assert exp.collector.flow_records == 0
    assert exp.collector.drop_records == 0
    assert exp.collector.stream_bytes() == b""


def test_zero_count_drop_events_are_ignored():
    session = Telemetry(ipfix=IpfixConfig())
    session.drop(DropReason.NIC_RX_MISSED, n=0, octets=0)
    assert session.ipfix.drop_packets == {}


def test_drop_event_without_a_session_is_a_noop():
    assert telemetry.ACTIVE is None
    telemetry.drop_event(DropReason.NIC_RX_MISSED)


# ======================================================================
# Byte-determinism and the off-mode identity.
# ======================================================================
def test_observer_cell_and_pcap_are_byte_identical_across_runs(tmp_path):
    kwargs = dict(packets=96, n_flows=8, seed=3)
    a = _run_cell("afxdp_zc", 8, pcap_prefix=str(tmp_path / "a"), **kwargs)
    b = _run_cell("afxdp_zc", 8, pcap_prefix=str(tmp_path / "b"), **kwargs)
    assert a.to_json() == b.to_json()
    assert a.sampled > 0 and a.reconciled and a.conserved
    pcap_a = (tmp_path / "a-afxdp_zc-8.pcap").read_bytes()
    pcap_b = (tmp_path / "b-afxdp_zc-8.pcap").read_bytes()
    assert pcap_a == pcap_b
    assert len(pcap_a) > 24  # global header plus at least one record


def test_inert_session_leaves_the_trace_ledger_byte_identical():
    def run(install):
        with trace.recording() as rec:
            bench = kernel_p2p(n_queues=1, link_gbps=25.0)
            stream = TrexStream(FlowSpec(n_flows=8))
            if install:
                with telemetry.monitoring(Telemetry()):
                    bench.drive(stream, 120)
            else:
                bench.drive(stream, 120)
        return rec.ledger(), dict(rec.counters)

    assert run(False) == run(True)
