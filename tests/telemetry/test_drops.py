"""The drop-reason taxonomy is closed, consistent, and round-trips."""

import pytest

from repro.afxdp.driver import AfxdpDriver
from repro.afxdp.socket import XskSocket
from repro.afxdp.umem import Umem
from repro.afxdp.umempool import UmemPool
from repro.telemetry.drops import (
    XSK_RX_REASONS,
    XSK_TX_REASONS,
    DropReason,
    DropStage,
    reason_for_sink,
)


def test_every_reason_round_trips_through_its_sink_string():
    for reason in DropReason:
        assert reason_for_sink(reason.value) is reason


def test_unknown_sink_is_an_error():
    with pytest.raises(KeyError):
        reason_for_sink("nic.made_up_counter")


def test_sink_strings_are_unique_and_every_reason_has_a_stage():
    values = [r.value for r in DropReason]
    assert len(values) == len(set(values))
    for reason in DropReason:
        assert isinstance(reason.stage, DropStage)


def test_kernel_reasons_carry_no_ledger_sink():
    # The kernel worlds' conservation is nic-level; everything else must
    # name the ledger leg it folds into.
    for reason in DropReason:
        if reason.value.startswith("kernel."):
            assert reason.ledger_sink is None
        else:
            assert reason.ledger_sink is not None


def test_fine_grained_dp_reasons_fold_into_the_coarse_sink():
    for reason in DropReason:
        if reason.value.startswith("dp."):
            assert reason.ledger_sink == DropReason.DP_DROPPED.value


def test_xsk_counters_name_real_socket_attributes():
    umem = Umem(n_frames=64, ring_size=64)
    sock = XskSocket(umem, UmemPool(umem), ring_size=64)
    for reason in XSK_RX_REASONS + XSK_TX_REASONS:
        assert getattr(sock, reason.counter) == 0


def test_driver_retired_counters_derive_from_the_taxonomy():
    assert AfxdpDriver._RETIRED_COUNTERS == ("tx_sent",) + tuple(
        r.counter for r in XSK_RX_REASONS + XSK_TX_REASONS)


def test_xsk_reasons_sit_on_the_right_side_of_the_datapath():
    for reason in XSK_RX_REASONS:
        assert reason.stage is DropStage.PRE_DATAPATH
    for reason in XSK_TX_REASONS:
        assert reason.stage is DropStage.POST_DATAPATH
