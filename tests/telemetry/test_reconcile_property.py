"""The reconciliation invariant under arbitrary seeded fault plans.

The IPFIX collector's totals (plus the ``telemetry.collector_loss``
casualties) must reconcile *exactly* against the packet-conservation
ledger — every offered frame either shows up in a flow record or in a
pre-datapath drop leg, whatever combination of tx-kick EAGAINs,
fill-ring overruns, upcall shedding, XDP map faults, daemon crashes and
export loss a plan throws at the pipeline.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.afxdp.driver import AfxdpOptions
from repro.experiments.common import warmup_count
from repro.experiments.p2p import _base_host
from repro.ovs.match import Match
from repro.ovs.ofactions import OutputAction
from repro.ovs.openflow import OpenFlowConnection
from repro.ovs.pmd import PmdThread
from repro.sim import faults, trace
from repro.sim.faults import FaultPlan, FaultRule
from repro.sim.supervisor import Supervisor
from repro.telemetry import IpfixConfig, SflowConfig, Telemetry
from repro.tools.conservation import afxdp_packet_ledger
from repro.traffic.trex import FlowSpec, TrexStream

#: Longer than any virtual run here: one deterministic flush at the end.
_TIMEOUT_NS = 10 ** 12


def _reconcile_under(plan, sflow_rate=8, packets=96, n_flows=8, seed=0):
    """Drive a supervised AF_XDP P2P world under ``plan`` with telemetry
    on; return (ledger, reconciliation problems, session)."""
    options = AfxdpOptions()
    with faults.injecting(plan), trace.recording():
        host, nic_in, nic_out = _base_host(1, 25.0)
        vs = host.install_ovs("netdev")
        vs.add_bridge("br0")
        p_in = vs.add_afxdp_port("br0", nic_in, options)
        vs.add_afxdp_port("br0", nic_out, options)
        stream = TrexStream(FlowSpec(n_flows=n_flows))
        of = OpenFlowConnection(vs.bridge("br0"))
        of.add_flow(0, 10, Match(in_port=p_in.ofport),
                    [OutputAction("ens2")])
        dpif = vs.dpif_netdev
        driver_in = dpif.ports[dpif.port_no("ens1")].adapter.driver
        driver_out = dpif.ports[dpif.port_no("ens2")].adapter.driver
        pmd = PmdThread(dpif, host.cpu, core=0,
                        batch_size=options.batch_size)
        pmd.add_rxq(dpif.ports[dpif.port_no("ens1")], 0)
        supervisor = Supervisor(host.user_ctx(host.cpu.n_cpus - 1),
                                host.clock, vs=vs, pmds=[pmd])
        session = Telemetry(
            sflow=(SflowConfig(rate=sflow_rate, points=("xdp", "dpif"),
                               seed=seed) if sflow_rate else None),
            ipfix=IpfixConfig(point="dpif",
                              active_timeout_ns=_TIMEOUT_NS,
                              idle_timeout_ns=_TIMEOUT_NS),
            now_ns_fn=lambda: host.clock.now,
        )

        def pump_all():
            while nic_in.pending():
                host.kernel.service_nic(nic_in,
                                        budget=options.batch_size)
                pmd.run_iteration()
            pmd.run_until_idle()

        def pump_while_down():
            # XSKs died with the daemon: the burst drains at the failed
            # redirect, attributed pre-datapath.
            while nic_in.pending():
                host.kernel.service_nic(nic_in,
                                        budget=options.batch_size)

        warmup = warmup_count(stream)
        with telemetry.monitoring(session):
            for pkt in stream.burst(warmup):
                nic_in.host_receive(pkt)
                pump_all()
            sent = 0
            while sent < packets:
                chunk = min(options.batch_size, packets - sent)
                for pkt in stream.burst(chunk):
                    nic_in.host_receive(pkt)
                sent += chunk
                if supervisor.maybe_crash():
                    pump_while_down()
                    supervisor.finish()
                pump_all()
            session.flush_all()
            ledger = afxdp_packet_ledger(
                warmup + packets, nic_in, driver_in, driver_out, dpif,
                extra_sinks=supervisor.crash_sinks)
            problems = session.reconcile(ledger)
    return ledger, problems, session


def test_reconciles_cleanly_without_faults():
    ledger, problems, session = _reconcile_under(FaultPlan())
    assert ledger.conserved(), ledger.render()
    assert problems == []
    # Faultless: no pre-datapath losses, so IPFIX saw every frame.
    assert session.collector.flow_packets == ledger.offered


def test_crash_recovery_keeps_the_books_balanced():
    plan = FaultPlan(seed=11, rules=[
        FaultRule("vswitchd.crash", nth=3, max_fires=1)])
    ledger, problems, session = _reconcile_under(plan)
    assert ledger.conserved(), ledger.render()
    assert problems == [], problems
    # The crash actually cost something, attributed to named legs.
    assert ledger.total_dropped > 0
    assert session.collector.flow_packets < ledger.offered


def test_same_seed_yields_a_byte_identical_export_stream():
    def plan():
        return FaultPlan(seed=5, rules=[
            FaultRule("dp.upcall_overload", rate=0.2),
            FaultRule("telemetry.collector_loss", rate=0.3)])

    _, p1, s1 = _reconcile_under(plan())
    _, p2, s2 = _reconcile_under(plan())
    assert p1 == [] and p2 == []
    stream = s1.collector.stream_bytes()
    assert stream == s2.collector.stream_bytes()
    assert stream  # non-vacuous: something survived to the collector


_POINTS = (
    "afxdp.tx_kick_eagain",
    "afxdp.fill_ring_overrun",
    "dp.upcall_overload",
    "ebpf.map_lookup_fault",
    "vswitchd.crash",
    "telemetry.collector_loss",
)


@settings(deadline=None, max_examples=8)
@given(
    seed=st.integers(min_value=0, max_value=2 ** 16),
    rates=st.lists(st.sampled_from([0.0, 0.05, 0.2]),
                   min_size=len(_POINTS), max_size=len(_POINTS)),
    sflow_rate=st.sampled_from([0, 8, 1]),
)
def test_reconciliation_is_exact_under_any_seeded_plan(
        seed, rates, sflow_rate):
    plan = FaultPlan(
        seed=seed,
        rules=[FaultRule(p, rate=r)
               for p, r in zip(_POINTS, rates) if r > 0.0])
    ledger, problems, _session = _reconcile_under(
        plan, sflow_rate=sflow_rate, seed=seed % 97)
    assert ledger.conserved(), ledger.render()
    assert problems == [], problems
