"""The perf_report CLI: every registered experiment is reachable, and
the --tree/--flame/--json/--diff views work end to end."""

import importlib
import inspect
import json

import pytest

from repro.__main__ import EXPERIMENTS
from repro.tools import perf_report
from repro.tools.perf_report import main, profile_experiment


def test_every_registered_experiment_resolves():
    """The CLI must accept every name `python -m repro --list` knows:
    each module imports and exposes a main() the runner can call."""
    assert EXPERIMENTS
    for name, (_title, module_name) in EXPERIMENTS.items():
        module = importlib.import_module(module_name)
        assert callable(module.main), name
        # _call_main's dispatch understands both main shapes.
        params = inspect.signature(module.main).parameters
        assert len(params) <= 1, (name, params)


def test_profile_experiment_rejects_unknown_name():
    with pytest.raises(KeyError, match="unknown experiment"):
        profile_experiment("nonesuch")


def test_profile_experiment_attaches_profiler(capsys):
    rec = profile_experiment("fig2")
    capsys.readouterr()  # swallow the experiment's own report
    assert rec.profiler is not None
    assert rec.conserved()
    assert rec.profiler.root.inclusive_ns() == pytest.approx(
        rec.cpu_charged_ns, rel=1e-9)
    plain = profile_experiment("fig2", with_profiler=False)
    capsys.readouterr()
    assert plain.profiler is None
    # The profiler never perturbed the ledger.
    assert rec.ledger() == plain.ledger()


def test_cli_tree_flame_json(tmp_path, capsys):
    flame = tmp_path / "out.folded"
    prof = tmp_path / "prof.json"
    rc = main(["fig2", "--tree", "--flame", str(flame),
               "--json", str(prof)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "virtual-time profile: fig2" in out
    assert "call tree: fig2" in out
    assert "conservation:" in out and "-> OK" in out
    stacks = flame.read_text().splitlines()
    assert stacks and all(s.startswith("all") for s in stacks)
    assert stacks == sorted(stacks)
    doc = json.loads(prof.read_text())
    assert doc["tree"]["label"] == "all"
    assert doc["root_inclusive_ns"] == pytest.approx(doc["cpu_charged_ns"])


def test_cli_flame_to_stdout(capsys):
    rc = main(["fig2", "--flame"])
    out = capsys.readouterr().out
    assert rc == 0
    assert any(line.startswith("all;") for line in out.splitlines())


def test_cli_diff(capsys):
    rc = main(["fig2", "fig2", "--diff"])
    out = capsys.readouterr().out
    assert rc == 0
    # Identical runs: every path delta vanishes.
    assert "(no differences)" in out


def test_cli_usage_errors(capsys):
    assert main(["--bogus"]) == 2
    assert main(["fig2", "table2"]) == 2          # two names, no --diff
    assert main(["fig2", "--diff"]) == 2          # --diff needs two
    assert main(["nonesuch"]) == 2
    assert main(["fig2", "--min-share", "wat"]) == 2
    capsys.readouterr()


def test_cli_help(capsys):
    assert main(["--help"]) == 0
    assert "usage:" in capsys.readouterr().out


def test_repro_main_profile_flag(capsys):
    from repro.__main__ import main as repro_main

    assert repro_main(["--profile", "fig2"]) == 0
    out = capsys.readouterr().out
    assert "call tree: fig2" in out
    assert "conservation:" in out


def test_format_report_shows_counters_and_audit():
    from repro.sim import trace
    from repro.sim.cpu import CpuCategory, CpuModel, ExecContext

    with trace.recording() as rec:
        ctx = ExecContext(CpuModel(1), 0, CpuCategory.USER)
        with rec.span("stage"):
            ctx.charge(5.0, label="emc")
        rec.count("emc.hit")
    out = perf_report.format_report(rec, title="t")
    assert "nested spans (inclusive):" in out
    assert "event counters:" in out
    assert "emc.hit" in out
    assert "-> OK" in out
