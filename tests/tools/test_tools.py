"""Table 1 in executable form: the tools work on kernel-managed devices
(including AF_XDP-fed ones) and fail on DPDK-bound devices."""

import pytest

from repro.dpdk.ethdev import bind_device
from repro.hosts.testbed import Testbed
from repro.kernel.nic import PhysicalNic
from repro.net.addresses import ip_to_int
from repro.tools.ethtool import Ethtool
from repro.tools.iproute import IpCommand, ToolError
from repro.tools.nstat import nstat, nstat_dict
from repro.tools.ping import arping, ping
from repro.tools.tcpdump import Tcpdump


@pytest.fixture
def tb():
    tb = Testbed(link_gbps=10)
    nic_a = tb.a.nics["ens1"]
    nic_b = tb.b.nics["ens1"]
    tb.a.kernel.init_ns.stack.attach(nic_a)
    tb.b.kernel.init_ns.stack.attach(nic_b)
    tb.configure_underlay()
    return tb


class TestIpCommands:
    def test_link_show(self, tb):
        out = IpCommand(tb.a.kernel.init_ns).link_show()
        assert "ens1" in out
        assert "UP" in out

    def test_link_show_specific_missing(self, tb):
        with pytest.raises(ToolError, match="does not exist"):
            IpCommand(tb.a.kernel.init_ns).link_show("eth42")

    def test_address_show(self, tb):
        out = IpCommand(tb.a.kernel.init_ns).address_show("ens1")
        assert "192.168.1.1/24" in out

    def test_address_add(self, tb):
        ip = IpCommand(tb.a.kernel.init_ns)
        ip.address_add("ens1", "172.16.0.1/24")
        assert "172.16.0.1/24" in ip.address_show("ens1")

    def test_route_show(self, tb):
        out = IpCommand(tb.a.kernel.init_ns).route_show()
        assert "192.168.1.0/24" in out

    def test_neigh_show(self, tb):
        out = IpCommand(tb.a.kernel.init_ns).neigh_show()
        assert "192.168.1.2" in out
        assert "PERMANENT" in out

    def test_link_set(self, tb):
        ip = IpCommand(tb.a.kernel.init_ns)
        ip.link_set("ens1", up=False)
        assert "DOWN" in ip.link_show("ens1")


class TestPing:
    def test_ping_success(self, tb):
        ctx = tb.a.user_ctx(0)
        result = ping(tb.a.kernel.init_ns, "192.168.1.2", ctx, tb.pump,
                      count=3)
        assert result.transmitted == 3
        assert result.received == 3
        assert result.loss_pct == 0

    def test_ping_unreachable_network(self, tb):
        ctx = tb.a.user_ctx(0)
        with pytest.raises(ToolError, match="unreachable"):
            ping(tb.a.kernel.init_ns, "203.0.113.1", ctx, tb.pump)

    def test_ping_silent_host_loses_packets(self, tb):
        ctx = tb.a.user_ctx(0)
        result = ping(tb.a.kernel.init_ns, "192.168.1.77", ctx, tb.pump,
                      count=2)
        assert result.received == 0
        assert result.loss_pct == 100

    def test_arping(self, tb):
        # Clear the static neighbor so arping does real resolution.
        tb.a.kernel.init_ns.neighbors.delete(ip_to_int("192.168.1.2"))
        ctx = tb.a.user_ctx(0)
        result = arping(tb.a.kernel.init_ns, "ens1", "192.168.1.2",
                        ctx, tb.pump)
        assert result.received == 1

    def test_arping_bad_device(self, tb):
        with pytest.raises(ToolError, match="not found"):
            arping(tb.a.kernel.init_ns, "eth9", "192.168.1.2",
                   tb.a.user_ctx(0), tb.pump)


class TestNstat:
    def test_counters_render(self, tb):
        ctx = tb.a.user_ctx(0)
        ping(tb.a.kernel.init_ns, "192.168.1.2", ctx, tb.pump, count=1)
        out = nstat(tb.a.kernel.init_ns)
        assert "IcmpEchoRepliesReceived" in out
        stats = nstat_dict(tb.b.kernel.init_ns)
        assert stats.get("IcmpOutEchoReps", 0) >= 1


class TestTcpdump:
    def test_capture_and_render(self, tb):
        ctx = tb.a.user_ctx(0)
        with Tcpdump(tb.a.kernel.init_ns, "ens1") as dump:
            ping(tb.a.kernel.init_ns, "192.168.1.2", ctx, tb.pump, count=1)
        lines = dump.stop()
        assert any("ICMP" in line for line in lines)
        assert any("[tx]" in line for line in lines)
        assert any("[rx]" in line for line in lines)

    def test_missing_device(self, tb):
        with pytest.raises(ToolError, match="No such device"):
            Tcpdump(tb.a.kernel.init_ns, "eth9")

    def test_renders_udp_and_arp(self, tb):
        from repro.net.builder import make_arp_request, make_udp_packet
        from repro.tools.tcpdump import render_packet

        udp = make_udp_packet(tb.a.nics["ens1"].mac, tb.b.nics["ens1"].mac,
                              "10.0.0.1", "10.0.0.2", 53, 53)
        assert "UDP" in render_packet(udp)
        arp = make_arp_request(tb.a.nics["ens1"].mac, "10.0.0.1", "10.0.0.2")
        assert "who-has" in render_packet(arp)


class TestEthtool:
    def test_features_and_channels(self, tb):
        et = Ethtool(tb.a.kernel.init_ns, "ens1")
        assert "rx-checksumming: on" in et.show_features()
        assert "Combined: 1" in et.show_channels()

    def test_ntuple_config(self, tb):
        et = Ethtool(tb.a.kernel.init_ns, "ens1")
        out = et.config_ntuple(queue=0, proto=17, dst_port=4789)
        assert "Added rule" in out
        assert "queue 0" in et.show_ntuple()

    def test_ntuple_bad_queue(self, tb):
        et = Ethtool(tb.a.kernel.init_ns, "ens1")
        with pytest.raises(ToolError):
            et.config_ntuple(queue=99)


class TestDpdkBreaksTheTools:
    """§2.2.1: 'well-known tools ... do not work with NICs in use by
    DPDK' — every command in Table 1 fails once the NIC is bound."""

    def test_all_tools_fail_after_bind(self, tb):
        ns = tb.a.kernel.init_ns
        bind_device(ns, "ens1")
        with pytest.raises(ToolError):
            IpCommand(ns).link_show("ens1")
        with pytest.raises(ToolError):
            IpCommand(ns).address_add("ens1", "10.0.0.1/24")
        with pytest.raises(ToolError):
            Tcpdump(ns, "ens1")
        with pytest.raises(ToolError):
            Ethtool(ns, "ens1")
        with pytest.raises(ToolError):
            arping(ns, "ens1", "192.168.1.2", tb.a.user_ctx(0), tb.pump)
        # ping fails too: binding removed the connected route.
        with pytest.raises(ToolError):
            ping(ns, "192.168.1.2", tb.a.user_ctx(0), tb.pump)

    def test_tools_work_on_afxdp_fed_nic(self, tb):
        """The flip side (§2.2.3): with AF_XDP the NIC stays visible."""
        from repro.afxdp.driver import AfxdpDriver

        ns = tb.a.kernel.init_ns
        driver = AfxdpDriver(tb.a.nics["ens1"])
        driver.setup()
        assert "ens1" in IpCommand(ns).link_show("ens1")
        Ethtool(ns, "ens1")  # does not raise
        Tcpdump(ns, "ens1").stop()