"""The matrix regression gate: passes clean runs, trips on injected
regressions, refuses malformed or divergent documents."""

import copy
import json
import pathlib

import pytest

from repro.perfmatrix.cells import CellSpec, run_cell
from repro.perfmatrix.matrix import (
    MatrixGrid,
    canonical_json,
    run_matrix,
)
from repro.perfmatrix.schema import validate_matrix
from repro.tools import matrix_gate

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

GRID = MatrixGrid(
    label="quick",
    frame_lens=(64,),
    flow_counts=(1, 1000),
    datapaths=("kernel", "dpdk"),
    topologies=("P2P",),
    packets=200,
)


@pytest.fixture(scope="module")
def doc():
    return run_matrix(GRID)


def _regress(doc, cell_index=0, factor=0.88):
    """A schema-valid copy with one cell's rate regressed."""
    bad = copy.deepcopy(doc)
    cell = bad["cells"][cell_index]
    cell["rate_mpps"] *= factor
    search = cell["search"]
    search["rate_mpps"] = cell["rate_mpps"]
    search["bracket"][0] = cell["rate_mpps"]
    search["trace"] = [
        {"offered_mpps": cell["rate_mpps"], "loss": 0.0, "lossless": True},
        {"offered_mpps": search["bracket"][1], "loss": 0.1,
         "lossless": False},
    ]
    assert validate_matrix(bad) == []
    return bad


def test_identical_documents_pass(doc):
    assert matrix_gate.compare(doc, doc) == []


def test_injected_regression_fails(doc):
    problems = matrix_gate.compare(doc, _regress(doc))
    assert len(problems) == 1
    assert "regressed 12.0%" in problems[0]


def test_improvement_beyond_tolerance_also_fails(doc):
    """A silent speedup is a stale baseline — the gate forces adoption."""
    problems = matrix_gate.compare(_regress(doc), doc)
    assert len(problems) == 1
    assert "improved" in problems[0]


def test_per_cell_tolerance_overrides_default(doc):
    loose = copy.deepcopy(doc)
    loose["cells"][0]["tolerance"] = 0.25
    assert matrix_gate.compare(loose, _regress(doc)) == []
    # ... and a tight per-cell tolerance trips where the default passes.
    tight = copy.deepcopy(doc)
    tight["cells"][0]["tolerance"] = 0.005
    nudged = _regress(doc, factor=0.99)
    assert matrix_gate.compare(doc, nudged) == []
    assert len(matrix_gate.compare(tight, nudged)) == 1


def test_missing_and_extra_cells_fail(doc):
    fewer = copy.deepcopy(doc)
    dropped = fewer["cells"].pop()
    problems = matrix_gate.compare(doc, fewer)
    assert any(dropped["id"] in p and "missing" in p for p in problems)
    problems = matrix_gate.compare(fewer, doc)
    assert any(dropped["id"] in p and "not in the baseline" in p
               for p in problems)


def test_coordinate_drift_fails(doc):
    moved = copy.deepcopy(doc)
    moved["cells"][0]["link_gbps"] = 100.0
    assert any("link_gbps changed" in p
               for p in matrix_gate.compare(doc, moved))


def test_main_end_to_end(tmp_path, doc):
    baseline = tmp_path / "BASELINE_matrix.json"
    fresh = tmp_path / "matrix.json"
    baseline.write_text(canonical_json(doc))
    fresh.write_text(canonical_json(doc))
    assert matrix_gate.main(
        [str(fresh), "--baseline", str(baseline)]) == 0

    fresh.write_text(canonical_json(_regress(doc)))
    assert matrix_gate.main(
        [str(fresh), "--baseline", str(baseline)]) == 1

    fresh.write_text("{not json")
    assert matrix_gate.main(
        [str(fresh), "--baseline", str(baseline)]) == 1

    fresh.write_text(json.dumps({"schema": "bogus"}))
    assert matrix_gate.main(
        [str(fresh), "--baseline", str(baseline)]) == 1


def test_committed_baseline_is_schema_valid():
    committed = json.loads(
        (REPO_ROOT / "BASELINE_matrix.json").read_text())
    assert validate_matrix(committed) == []
    assert matrix_gate.compare(committed, committed) == []


def test_schema_rejects_tampered_search_evidence(doc):
    """A rate not backed by its own search trace is schema-invalid —
    the gate cannot be fooled by editing the headline number alone."""
    tampered = copy.deepcopy(doc)
    tampered["cells"][0]["rate_mpps"] *= 0.5
    assert validate_matrix(tampered)


def test_cell_runner_rejects_bad_budget():
    with pytest.raises(ValueError):
        run_cell(CellSpec("P2P", "dpdk", 64, 1), packets=0)
