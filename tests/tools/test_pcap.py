import struct

import pytest

from repro.hosts.host import Host
from repro.net.addresses import MacAddress
from repro.net.builder import make_tcp_packet, make_udp_packet
from repro.tools.pcap import PCAP_MAGIC, pcap_bytes, read_pcap, write_pcap
from repro.tools.tcpdump import Tcpdump


def mac(i):
    return MacAddress.local(i)


PKTS = [
    make_udp_packet(mac(1), mac(2), "10.0.0.1", "10.0.0.2", 53, 53),
    make_tcp_packet(mac(2), mac(1), "10.0.0.2", "10.0.0.1", 80, 4000),
]


def test_roundtrip(tmp_path):
    path = str(tmp_path / "capture.pcap")
    assert write_pcap(path, PKTS, timestamps_us=[1_500_000, 2_250_000]) == 2
    frames = read_pcap(path)
    assert [f[1] for f in frames] == [p.data for p in PKTS]
    assert frames[0][0] == 1_500_000
    assert frames[1][0] == 2_250_000


def test_global_header_magic():
    blob = pcap_bytes(PKTS)
    (magic,) = struct.unpack_from("<I", blob, 0)
    assert magic == PCAP_MAGIC


def test_snaplen_truncates():
    blob = pcap_bytes(PKTS, snaplen=20)
    # record header reports captured=20, original=len
    incl, orig = struct.unpack_from("<II", blob, 24 + 8)
    assert incl == 20
    assert orig == len(PKTS[0])


def test_read_rejects_garbage(tmp_path):
    path = str(tmp_path / "bad.pcap")
    with open(path, "wb") as f:
        f.write(b"\x00" * 30)
    with pytest.raises(ValueError, match="magic"):
        read_pcap(path)
    with open(path, "wb") as f:
        f.write(b"\x01")
    with pytest.raises(ValueError, match="truncated"):
        read_pcap(path)


def test_tcpdump_save(tmp_path):
    host = Host("cap", n_cpus=2)
    from repro.kernel.netdev import NetDevice

    dev = NetDevice("eth0", mac(5))
    host.kernel.init_ns.register(dev)
    dev.set_up()
    dev.set_rx_handler(lambda pkt, ctx: None)
    ctx = host.user_ctx(0)
    with Tcpdump(host.kernel.init_ns, "eth0") as dump:
        for pkt in PKTS:
            dev.deliver(pkt, ctx)
    path = str(tmp_path / "eth0.pcap")
    assert dump.save(path) == 2
    assert len(read_pcap(path)) == 2
