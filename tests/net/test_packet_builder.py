import pytest

from repro.net.addresses import MacAddress
from repro.net.builder import (
    MIN_FRAME,
    make_arp_reply,
    make_arp_request,
    make_icmp_echo,
    make_tcp_packet,
    make_udp_packet,
)
from repro.net.checksum import l4_checksum_v4, verify_checksum
from repro.net.ipv4 import IPProto, Ipv4Header
from repro.net.packet import Packet, PacketMeta
from repro.net.tcp import TcpHeader
from repro.net.udp import UdpHeader

SRC = MacAddress("02:00:00:00:00:01")
DST = MacAddress("02:00:00:00:00:02")


class TestPacket:
    def test_minimum_frame_enforced(self):
        with pytest.raises(ValueError):
            Packet(b"\x00" * 10)

    def test_clone_is_deep_for_meta(self):
        pkt = make_udp_packet(SRC, DST, "10.0.0.1", "10.0.0.2")
        pkt.meta.in_port = 5
        pkt.meta.tunnel.vni = 9
        dup = pkt.clone()
        dup.meta.in_port = 6
        dup.meta.tunnel.vni = 10
        assert pkt.meta.in_port == 5
        assert pkt.meta.tunnel.vni == 9

    def test_with_data_shares_meta(self):
        pkt = make_udp_packet(SRC, DST, "10.0.0.1", "10.0.0.2")
        pkt.meta.in_port = 4
        rewritten = pkt.with_data(pkt.data[:-1] + b"\xff")
        assert rewritten.meta is pkt.meta
        assert rewritten.data != pkt.data

    def test_default_meta(self):
        meta = PacketMeta()
        assert meta.recirc_id == 0
        assert meta.rxhash is None
        assert not meta.csum_verified


class TestUdpBuilder:
    def test_frame_len_convention(self):
        # "64-byte packets" on the wire -> a 60-byte frame in memory.
        pkt = make_udp_packet(SRC, DST, "10.0.0.1", "10.0.0.2", frame_len=64)
        assert len(pkt) == 60

    def test_min_padding(self):
        pkt = make_udp_packet(SRC, DST, "10.0.0.1", "10.0.0.2")
        assert len(pkt) == MIN_FRAME

    def test_payload_too_big_for_frame_rejected(self):
        with pytest.raises(ValueError):
            make_udp_packet(
                SRC, DST, "10.0.0.1", "10.0.0.2",
                payload=b"\x00" * 200, frame_len=64,
            )

    def test_1518_byte_frame(self):
        pkt = make_udp_packet(
            SRC, DST, "10.0.0.1", "10.0.0.2",
            payload=b"\xaa" * 1472, frame_len=1518,
        )
        assert len(pkt) == 1514

    def test_headers_parse_back(self):
        pkt = make_udp_packet(SRC, DST, "10.0.0.1", "10.0.0.2", 7, 8,
                              payload=b"hello")
        ip = Ipv4Header.unpack(pkt.data, 14)
        assert ip.proto == IPProto.UDP
        assert verify_checksum(pkt.data[14:34])
        udp = UdpHeader.unpack(pkt.data, 34)
        assert (udp.src_port, udp.dst_port) == (7, 8)
        assert udp.length == 8 + 5

    def test_udp_checksum_valid(self):
        pkt = make_udp_packet(SRC, DST, "10.0.0.1", "10.0.0.2",
                              payload=b"data")
        ip = Ipv4Header.unpack(pkt.data, 14)
        seg = pkt.data[34 : 34 + ip.total_length - 20]
        assert l4_checksum_v4(ip.src, ip.dst, IPProto.UDP, seg) == 0


class TestTcpBuilder:
    def test_tcp_checksum_valid(self):
        pkt = make_tcp_packet(SRC, DST, "10.0.0.1", "10.0.0.2",
                              payload=b"GET / HTTP/1.0\r\n")
        ip = Ipv4Header.unpack(pkt.data, 14)
        seg = pkt.data[34 : 34 + ip.total_length - 20]
        assert l4_checksum_v4(ip.src, ip.dst, IPProto.TCP, seg) == 0

    def test_csum_partial_flag_when_offloaded(self):
        pkt = make_tcp_packet(SRC, DST, "10.0.0.1", "10.0.0.2",
                              fill_checksum=False)
        assert pkt.meta.csum_partial

    def test_seq_ack_roundtrip(self):
        pkt = make_tcp_packet(SRC, DST, "10.0.0.1", "10.0.0.2",
                              seq=100, ack=200)
        tcp = TcpHeader.unpack(pkt.data, 34)
        assert (tcp.seq, tcp.ack) == (100, 200)


class TestArpIcmpBuilders:
    def test_arp_request_is_broadcast(self):
        pkt = make_arp_request(SRC, "10.0.0.1", "10.0.0.2")
        assert pkt.data[:6] == b"\xff" * 6

    def test_arp_reply_is_unicast(self):
        pkt = make_arp_reply(SRC, "10.0.0.1", DST, "10.0.0.2")
        assert pkt.data[:6] == DST.to_bytes()

    def test_icmp_echo_request_and_reply(self):
        req = make_icmp_echo(SRC, DST, "10.0.0.1", "10.0.0.2")
        rep = make_icmp_echo(DST, SRC, "10.0.0.2", "10.0.0.1", reply=True)
        assert req.data[34] == 8  # echo request type
        assert rep.data[34] == 0  # echo reply type
