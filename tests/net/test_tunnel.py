import pytest

from repro.net.addresses import MacAddress, ip_to_int
from repro.net.builder import make_udp_packet
from repro.net.ethernet import EtherType
from repro.net.tunnel import (
    GENEVE_PORT,
    TunnelConfig,
    decapsulate,
    encapsulate,
    erspan2_header,
    geneve_header,
    gre_header,
    parse_erspan2,
    parse_geneve,
    parse_gre,
    parse_vxlan,
    vxlan_header,
)

SRC = MacAddress("02:00:00:00:00:01")
DST = MacAddress("02:00:00:00:00:02")
LOCAL = MacAddress("02:00:00:00:00:aa")
REMOTE = MacAddress("02:00:00:00:00:bb")


def _cfg(tunnel_type: str, vni: int = 7) -> TunnelConfig:
    return TunnelConfig(
        tunnel_type=tunnel_type,
        local_ip=ip_to_int("192.168.1.1"),
        remote_ip=ip_to_int("192.168.1.2"),
        vni=vni,
        local_mac=LOCAL,
        remote_mac=REMOTE,
    )


INNER = make_udp_packet(SRC, DST, "10.0.0.1", "10.0.0.2", frame_len=100).data


@pytest.mark.parametrize("ttype", ["geneve", "vxlan", "gre", "erspan"])
def test_encap_decap_roundtrip(ttype):
    cfg = _cfg(ttype, vni=123)
    outer = encapsulate(cfg, INNER)
    found_type, vni, src, dst, inner = decapsulate(outer)
    assert found_type == ttype
    assert vni == 123
    assert src == cfg.local_ip
    assert dst == cfg.remote_ip
    assert inner == INNER


def test_unknown_tunnel_type_rejected():
    with pytest.raises(ValueError):
        encapsulate(_cfg("stt"), INNER)  # STT: rejected upstream, §2.1 :-)


def test_geneve_header_fields():
    hdr = geneve_header(vni=0xABCDEF)
    vni, options, off = parse_geneve(hdr, 0)
    assert vni == 0xABCDEF
    assert options == b""
    assert off == 8


def test_geneve_with_options():
    opts = b"\x01\x02\x03\x04\x05\x06\x07\x08"
    hdr = geneve_header(vni=9, options=opts)
    vni, options, off = parse_geneve(hdr, 0)
    assert options == opts
    assert off == 8 + len(opts)


def test_geneve_rejects_unaligned_options():
    with pytest.raises(ValueError):
        geneve_header(1, options=b"\x01\x02\x03")


def test_geneve_entropy_source_port_varies_by_inner_flow():
    cfg = _cfg("geneve")
    a = make_udp_packet(SRC, DST, "10.0.0.1", "10.0.0.2", 1, 1).data
    b = make_udp_packet(SRC, DST, "10.0.0.3", "10.0.0.4", 9, 9).data
    import struct

    pa = struct.unpack_from("!H", encapsulate(cfg, a), 34)[0]
    pb = struct.unpack_from("!H", encapsulate(cfg, b), 34)[0]
    assert pa != pb  # underlay ECMP sees different flows


def test_vxlan_roundtrip():
    hdr = vxlan_header(vni=42)
    vni, off = parse_vxlan(hdr, 0)
    assert vni == 42
    assert off == 8


def test_vxlan_rejects_missing_i_flag():
    with pytest.raises(ValueError):
        parse_vxlan(b"\x00" * 8, 0)


def test_gre_with_key():
    hdr = gre_header(key=77)
    key, proto, off = parse_gre(hdr, 0)
    assert key == 77
    assert proto == EtherType.TEB
    assert off == 8


def test_gre_without_key():
    hdr = gre_header()
    key, proto, off = parse_gre(hdr, 0)
    assert key is None
    assert off == 4


def test_erspan_session_id():
    hdr = erspan2_header(session_id=1000, index=5)
    session, off = parse_erspan2(hdr, 0)
    assert session == 1000
    assert off == 8


def test_erspan_rejects_wide_session():
    with pytest.raises(ValueError):
        erspan2_header(session_id=1024)


def test_decap_rejects_plain_udp():
    plain = make_udp_packet(SRC, DST, "10.0.0.1", "10.0.0.2", 53, 53).data
    with pytest.raises(ValueError):
        decapsulate(plain)


def test_decap_rejects_non_ip():
    from repro.net.builder import make_arp_request

    with pytest.raises(ValueError):
        decapsulate(make_arp_request(SRC, "1.2.3.4", "1.2.3.5").data)


def test_geneve_outer_dst_port():
    import struct

    outer = encapsulate(_cfg("geneve"), INNER)
    dst_port = struct.unpack_from("!H", outer, 36)[0]
    assert dst_port == GENEVE_PORT
