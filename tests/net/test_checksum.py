import struct

from hypothesis import given
from hypothesis import strategies as st

from repro.net.checksum import (
    internet_checksum,
    l4_checksum_v4,
    pseudo_header_v4,
    verify_checksum,
)


def test_known_rfc1071_example():
    # Classic example from RFC 1071 §3.
    data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
    assert internet_checksum(data) == 0x220D


def test_odd_length_padded():
    assert internet_checksum(b"\x01") == internet_checksum(b"\x01\x00")


def test_verify_accepts_valid():
    data = b"\x45\x00\x00\x28" + b"\x00" * 16
    csum = internet_checksum(data)
    stamped = data[:10] + struct.pack("!H", csum) + data[12:]
    assert verify_checksum(stamped)


def test_verify_rejects_corrupted():
    data = b"\x45\x00\x00\x28" + b"\x01" * 16
    csum = internet_checksum(data)
    stamped = data[:10] + struct.pack("!H", csum) + data[12:]
    corrupted = bytes([stamped[0] ^ 0xFF]) + stamped[1:]
    assert not verify_checksum(corrupted)


@given(st.binary(min_size=0, max_size=256))
def test_checksum_then_verify_property(payload):
    # Appending the checksum of data makes the whole verify.
    csum = internet_checksum(payload)
    stamped = payload + (b"\x00" if len(payload) % 2 else b"") + struct.pack("!H", csum)
    assert verify_checksum(stamped)


@given(st.binary(min_size=2, max_size=64))
def test_checksum_in_range(payload):
    assert 0 <= internet_checksum(payload) <= 0xFFFF


def test_pseudo_header_layout():
    ph = pseudo_header_v4(0x0A000001, 0x0A000002, 17, 100)
    assert len(ph) == 12
    assert ph[8] == 0  # zero byte
    assert ph[9] == 17  # proto


def test_l4_checksum_includes_pseudo_header():
    seg = b"\x12\x34\x56\x78\x00\x08\x00\x00"
    a = l4_checksum_v4(1, 2, 17, seg)
    b = l4_checksum_v4(1, 3, 17, seg)
    assert a != b  # different dst ip changes the checksum
