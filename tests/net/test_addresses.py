import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.addresses import (
    MacAddress,
    int_to_ip,
    ip_to_int,
    prefix_to_mask,
)


class TestMacAddress:
    def test_from_string_roundtrip(self):
        mac = MacAddress("aa:bb:cc:dd:ee:ff")
        assert str(mac) == "aa:bb:cc:dd:ee:ff"
        assert mac.value == 0xAABBCCDDEEFF

    def test_from_int_and_bytes(self):
        assert MacAddress(0x010203040506) == MacAddress(
            bytes([1, 2, 3, 4, 5, 6])
        )

    def test_copy_constructor(self):
        m = MacAddress("02:00:00:00:00:01")
        assert MacAddress(m) == m

    def test_to_bytes(self):
        assert MacAddress("01:02:03:04:05:06").to_bytes() == bytes(
            [1, 2, 3, 4, 5, 6]
        )

    def test_rejects_bad_syntax(self):
        for bad in ("nonsense", "aa:bb:cc:dd:ee", "gg:bb:cc:dd:ee:ff", ""):
            with pytest.raises(ValueError):
                MacAddress(bad)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            MacAddress(2**48)
        with pytest.raises(ValueError):
            MacAddress(-1)
        with pytest.raises(ValueError):
            MacAddress(b"\x00" * 7)

    def test_rejects_wrong_type(self):
        with pytest.raises(TypeError):
            MacAddress(1.5)  # type: ignore[arg-type]

    def test_broadcast(self):
        assert MacAddress.broadcast().is_broadcast
        assert MacAddress.broadcast().is_multicast
        assert not MacAddress("02:00:00:00:00:01").is_broadcast

    def test_multicast_bit(self):
        assert MacAddress("01:00:5e:00:00:01").is_multicast
        assert not MacAddress("02:00:00:00:00:01").is_multicast

    def test_local_factory_unique_and_unicast(self):
        macs = {MacAddress.local(i) for i in range(100)}
        assert len(macs) == 100
        assert not any(m.is_multicast for m in macs)

    def test_local_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            MacAddress.local(2**40)

    def test_ordering_and_hash(self):
        a, b = MacAddress.local(1), MacAddress.local(2)
        assert a < b
        assert len({a, MacAddress.local(1)}) == 1

    @given(st.integers(0, 2**48 - 1))
    def test_string_roundtrip_property(self, value):
        assert MacAddress(str(MacAddress(value))).value == value


class TestIpConversion:
    def test_known_values(self):
        assert ip_to_int("0.0.0.0") == 0
        assert ip_to_int("255.255.255.255") == 0xFFFFFFFF
        assert ip_to_int("10.0.0.1") == 0x0A000001
        assert int_to_ip(0x0A000001) == "10.0.0.1"

    def test_rejects_bad(self):
        for bad in ("1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", ""):
            with pytest.raises(ValueError):
                ip_to_int(bad)
        with pytest.raises(ValueError):
            int_to_ip(-1)
        with pytest.raises(ValueError):
            int_to_ip(2**32)

    @given(st.integers(0, 2**32 - 1))
    def test_roundtrip_property(self, value):
        assert ip_to_int(int_to_ip(value)) == value


class TestPrefixMask:
    def test_known_masks(self):
        assert prefix_to_mask(0) == 0
        assert prefix_to_mask(8) == 0xFF000000
        assert prefix_to_mask(24) == 0xFFFFFF00
        assert prefix_to_mask(32) == 0xFFFFFFFF

    def test_rejects_bad(self):
        with pytest.raises(ValueError):
            prefix_to_mask(33)
        with pytest.raises(ValueError):
            prefix_to_mask(-1)

    @given(st.integers(1, 32))
    def test_mask_has_prefix_len_bits(self, n):
        assert bin(prefix_to_mask(n)).count("1") == n
