from hypothesis import given
from hypothesis import strategies as st

from repro.net.addresses import MacAddress
from repro.net.builder import make_arp_request, make_tcp_packet, make_udp_packet
from repro.net.ethernet import VlanTag, push_vlan
from repro.net.flow import (
    EXACT_MASK,
    WILDCARD_MASK,
    FiveTuple,
    FlowKey,
    apply_mask,
    extract_flow,
    l4_offset_of,
    mask_from_fields,
    rss_hash,
)
from repro.net.ipv4 import IPProto
from repro.net.tcp import TcpFlags

SRC = MacAddress("02:00:00:00:00:01")
DST = MacAddress("02:00:00:00:00:02")


def test_udp_extraction():
    pkt = make_udp_packet(SRC, DST, "10.0.0.1", "10.0.0.2", 1111, 2222)
    key = extract_flow(pkt.data, in_port=3)
    assert key.in_port == 3
    assert key.eth_src == SRC.value
    assert key.eth_dst == DST.value
    assert key.eth_type == 0x0800
    assert key.nw_src == 0x0A000001
    assert key.nw_dst == 0x0A000002
    assert key.nw_proto == IPProto.UDP
    assert key.tp_src == 1111
    assert key.tp_dst == 2222
    assert key.vlan_tci == 0


def test_tcp_extraction_includes_flags():
    pkt = make_tcp_packet(
        SRC, DST, "10.0.0.1", "10.0.0.2",
        flags=int(TcpFlags.SYN),
    )
    key = extract_flow(pkt.data)
    assert key.nw_proto == IPProto.TCP
    assert key.tcp_flags == int(TcpFlags.SYN)


def test_vlan_extraction():
    pkt = make_udp_packet(SRC, DST, "10.0.0.1", "10.0.0.2")
    tagged = push_vlan(pkt.data, VlanTag(vid=42, pcp=5))
    key = extract_flow(tagged)
    assert key.vlan_tci == (5 << 13) | 42 | 0x1000
    assert key.nw_src == 0x0A000001  # L3 still parsed past the tag


def test_arp_extraction():
    pkt = make_arp_request(SRC, "10.0.0.1", "10.0.0.2")
    key = extract_flow(pkt.data)
    assert key.eth_type == 0x0806
    assert key.nw_src == 0x0A000001
    assert key.nw_dst == 0x0A000002
    assert key.nw_proto == 1  # ARP op


def test_short_unknown_frame_gives_zeroed_l3():
    key = extract_flow(b"\x00" * 14)
    assert key.nw_src == 0
    assert key.tp_src == 0


def test_recirc_and_ct_fields_distinguish_keys():
    pkt = make_udp_packet(SRC, DST, "10.0.0.1", "10.0.0.2")
    k0 = extract_flow(pkt.data, recirc_id=0)
    k1 = extract_flow(pkt.data, recirc_id=1)
    assert k0 != k1
    assert k0._replace(recirc_id=1) == k1


def test_five_tuple_and_reverse():
    pkt = make_udp_packet(SRC, DST, "10.0.0.1", "10.0.0.2", 10, 20)
    ft = extract_flow(pkt.data).five_tuple()
    assert ft == FiveTuple(IPProto.UDP, 0x0A000001, 0x0A000002, 10, 20)
    assert ft.reversed() == FiveTuple(IPProto.UDP, 0x0A000002, 0x0A000001, 20, 10)


class TestMasks:
    def test_exact_mask_preserves_key(self):
        pkt = make_udp_packet(SRC, DST, "10.0.0.1", "10.0.0.2")
        key = extract_flow(pkt.data)
        assert apply_mask(key, EXACT_MASK) == tuple(key)

    def test_wildcard_mask_zeroes_everything(self):
        pkt = make_udp_packet(SRC, DST, "10.0.0.1", "10.0.0.2")
        key = extract_flow(pkt.data)
        assert apply_mask(key, WILDCARD_MASK) == tuple([0] * len(key))

    def test_mask_from_fields_prefix(self):
        mask = mask_from_fields(nw_dst=0xFFFFFF00, eth_type=-1)
        pkt_a = make_udp_packet(SRC, DST, "10.0.0.1", "10.0.1.7")
        pkt_b = make_udp_packet(SRC, DST, "10.9.9.9", "10.0.1.200")
        a = apply_mask(extract_flow(pkt_a.data), mask)
        b = apply_mask(extract_flow(pkt_b.data), mask)
        assert a == b  # same /24, same ethertype; all else wildcarded

    def test_mask_from_fields_rejects_unknown(self):
        import pytest

        with pytest.raises(KeyError):
            mask_from_fields(not_a_field=-1)


class TestRssHash:
    def test_deterministic(self):
        ft = FiveTuple(6, 1, 2, 3, 4)
        assert rss_hash(ft) == rss_hash(ft)

    def test_32bit(self):
        assert 0 <= rss_hash(FiveTuple(17, 2**32 - 1, 0, 65535, 0)) < 2**32

    @given(
        st.integers(0, 2**32 - 1),
        st.integers(0, 2**32 - 1),
        st.integers(0, 65535),
        st.integers(0, 65535),
    )
    def test_spreads_flows(self, sip, dip, sp, dp):
        h = rss_hash(FiveTuple(17, sip, dip, sp, dp))
        assert 0 <= h < 2**32

    def test_distribution_over_queues(self):
        # 1000 random flows (the paper's worst case) should spread across
        # queues reasonably evenly — this is what RSS gives the kernel DP.
        from repro.sim.rng import make_rng

        rng = make_rng("rss-test")
        counts = [0] * 8
        for _ in range(1000):
            ft = FiveTuple(
                17,
                rng.getrandbits(32),
                rng.getrandbits(32),
                rng.getrandbits(16),
                rng.getrandbits(16),
            )
            counts[rss_hash(ft) % 8] += 1
        assert min(counts) > 60  # no starved queue


def test_l4_offset_plain_and_vlan():
    pkt = make_udp_packet(SRC, DST, "10.0.0.1", "10.0.0.2")
    assert l4_offset_of(pkt.data) == 34
    tagged = push_vlan(pkt.data, VlanTag(vid=7))
    assert l4_offset_of(tagged) == 38


def test_l4_offset_non_ip():
    pkt = make_arp_request(SRC, "10.0.0.1", "10.0.0.2")
    assert l4_offset_of(pkt.data) is None


@given(st.binary(min_size=14, max_size=100))
def test_extract_never_crashes(data):
    key = extract_flow(data)
    assert isinstance(key, FlowKey)
