import pytest

from repro.net.addresses import MacAddress
from repro.net.arp import ArpOp, ArpPacket
from repro.net.checksum import verify_checksum
from repro.net.ethernet import (
    ETH_HLEN,
    EthernetHeader,
    EtherType,
    VlanTag,
    pop_vlan,
    push_vlan,
)
from repro.net.icmp import IcmpHeader, IcmpType
from repro.net.ipv4 import IPProto, Ipv4Header
from repro.net.tcp import TcpFlags, TcpHeader
from repro.net.udp import UdpHeader

SRC = MacAddress("02:00:00:00:00:01")
DST = MacAddress("02:00:00:00:00:02")


class TestEthernet:
    def test_roundtrip(self):
        hdr = EthernetHeader(DST, SRC, EtherType.IPV4)
        packed = hdr.pack()
        assert len(packed) == ETH_HLEN
        again = EthernetHeader.unpack(packed)
        assert again == hdr

    def test_unpack_truncated(self):
        with pytest.raises(ValueError):
            EthernetHeader.unpack(b"\x00" * 10)

    def test_unpack_with_offset(self):
        hdr = EthernetHeader(DST, SRC, EtherType.ARP)
        data = b"\xff" * 4 + hdr.pack()
        assert EthernetHeader.unpack(data, 4) == hdr


class TestVlan:
    def test_push_then_pop(self):
        eth = EthernetHeader(DST, SRC, EtherType.IPV4)
        frame = eth.pack() + b"payload-bytes!"
        tagged = push_vlan(frame, VlanTag(vid=100, pcp=3))
        assert EthernetHeader.unpack(tagged).ethertype == EtherType.VLAN
        assert len(tagged) == len(frame) + 4
        untagged, tag = pop_vlan(tagged)
        assert untagged == frame
        assert tag.vid == 100
        assert tag.pcp == 3

    def test_pop_untagged_raises(self):
        frame = EthernetHeader(DST, SRC, EtherType.IPV4).pack() + b"x" * 50
        with pytest.raises(ValueError):
            pop_vlan(frame)

    def test_tag_validation(self):
        with pytest.raises(ValueError):
            VlanTag(vid=4096)
        with pytest.raises(ValueError):
            VlanTag(vid=1, pcp=8)


class TestIpv4:
    def test_roundtrip(self):
        hdr = Ipv4Header(src=0x0A000001, dst=0x0A000002, proto=IPProto.UDP,
                         total_length=60, ttl=17, dscp=10, ecn=1)
        again = Ipv4Header.unpack(hdr.pack())
        assert (again.src, again.dst, again.proto) == (hdr.src, hdr.dst, hdr.proto)
        assert again.ttl == 17
        assert again.dscp == 10
        assert again.ecn == 1

    def test_checksum_valid(self):
        packed = Ipv4Header(src=1, dst=2, proto=6, total_length=40).pack()
        assert verify_checksum(packed)

    def test_rejects_non_ipv4(self):
        packed = bytearray(Ipv4Header(src=1, dst=2, proto=6).pack())
        packed[0] = (6 << 4) | 5  # version 6
        with pytest.raises(ValueError):
            Ipv4Header.unpack(bytes(packed))

    def test_rejects_truncated(self):
        with pytest.raises(ValueError):
            Ipv4Header.unpack(b"\x45\x00")

    def test_decrement_ttl(self):
        hdr = Ipv4Header(src=1, dst=2, proto=6, ttl=2)
        assert hdr.decrement_ttl().ttl == 1
        with pytest.raises(ValueError):
            Ipv4Header(src=1, dst=2, proto=6, ttl=0).decrement_ttl()


class TestUdp:
    def test_roundtrip(self):
        hdr = UdpHeader(1234, 5678, 20, 0xBEEF)
        assert UdpHeader.unpack(hdr.pack()) == hdr

    def test_truncated(self):
        with pytest.raises(ValueError):
            UdpHeader.unpack(b"\x00" * 4)


class TestTcp:
    def test_roundtrip(self):
        hdr = TcpHeader(80, 443, seq=12345, ack=999,
                        flags=int(TcpFlags.SYN | TcpFlags.ACK), window=1024)
        again = TcpHeader.unpack(hdr.pack())
        assert again == hdr
        assert again.has(TcpFlags.SYN)
        assert again.has(TcpFlags.ACK)
        assert not again.has(TcpFlags.FIN)

    def test_truncated(self):
        with pytest.raises(ValueError):
            TcpHeader.unpack(b"\x00" * 10)


class TestArp:
    def test_roundtrip(self):
        pkt = ArpPacket(ArpOp.REQUEST, SRC, 0x0A000001, MacAddress(0), 0x0A000002)
        again = ArpPacket.unpack(pkt.pack())
        assert again.op == ArpOp.REQUEST
        assert again.sender_mac == SRC
        assert again.target_ip == 0x0A000002

    def test_rejects_non_ethernet_ipv4(self):
        raw = bytearray(
            ArpPacket(ArpOp.REPLY, SRC, 1, DST, 2).pack()
        )
        raw[1] = 9  # weird hardware type
        with pytest.raises(ValueError):
            ArpPacket.unpack(bytes(raw))


class TestIcmp:
    def test_roundtrip_with_checksum(self):
        hdr = IcmpHeader(IcmpType.ECHO_REQUEST, identifier=7, sequence=3)
        packed = hdr.pack(b"ping-payload")
        assert verify_checksum(packed)
        again = IcmpHeader.unpack(packed)
        assert again.icmp_type == IcmpType.ECHO_REQUEST
        assert again.identifier == 7
        assert again.sequence == 3

    def test_truncated(self):
        with pytest.raises(ValueError):
            IcmpHeader.unpack(b"\x08\x00")
