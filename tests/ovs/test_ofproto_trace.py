"""ofproto/trace narration, metrics/show, coverage rates — and the
read-only contract: a mid-run trace changes no subsequent ledger byte."""

import pytest

from repro.hosts.host import Host
from repro.ovs.appctl import OvsAppctl
from repro.ovs.match import Match
from repro.ovs.ofactions import CtAction, OutputAction
from repro.ovs.openflow import OpenFlowConnection
from repro.ovs.pmd import PmdThread
from repro.sim import trace
from repro.sim.profile import MetricsSampler

from .conftest import udp_pkt


@pytest.fixture
def world():
    host = Host("trace", n_cpus=4)
    vs = host.install_ovs("netdev")
    vs.add_bridge("br0")
    p1, a1 = vs.add_sim_port("br0", "p1")
    p2, a2 = vs.add_sim_port("br0", "p2")
    of = OpenFlowConnection(vs.bridge("br0"))
    of.add_flow(0, 10, Match(), [OutputAction("p2")])
    return host, vs, (p1, a1), (p2, a2)


def _pmd(host, vs, p1):
    pmd = PmdThread(vs.dpif_netdev, host.cpu, core=1)
    pmd.add_rxq(vs.dpif_netdev.ports[p1.dp_port_no], 0)
    return pmd


# ---------------------------------------------------------------------------
# Narration.
# ---------------------------------------------------------------------------
def test_trace_cold_packet_narrates_upcall(world):
    host, vs, (p1, _a1), _p2 = world
    out = OvsAppctl(vs).ofproto_trace(udp_pkt(), "p1")
    assert out.splitlines()[0] == "Pass 1"
    assert "Flow: recirc_id=0x0,in_port=2" in out
    assert "nw_src=10.0.0.1,nw_dst=10.0.0.2" in out
    assert "EMC: (no per-PMD cache supplied; skipped)" in out
    assert "Megaflow: miss (0 subtable(s) probed)" in out
    assert "Upcall: translating through the OpenFlow tables" in out
    assert 'bridge("br0")' in out
    assert " 0. priority 10, (match any)" in out
    assert "    actions: output:p2" in out
    assert "(trace: not installed)" in out
    assert "Datapath actions: 3" in out
    assert "-> output to port 3 (p2)" in out


def test_trace_warm_packet_reports_cache_hits(world):
    host, vs, (p1, a1), _p2 = world
    pmd = _pmd(host, vs, p1)
    a1.inject([udp_pkt() for _ in range(4)])
    pmd.run_until_idle()
    appctl = OvsAppctl(vs)
    # With the PMD's cache supplied: first-level hit.
    out = appctl.ofproto_trace(udp_pkt(), "p1", emc=pmd.emc)
    assert "EMC: hit" in out
    assert "Upcall" not in out
    # Without it: the trace falls through to the shared megaflow cache.
    out = appctl.ofproto_trace(udp_pkt(), "p1")
    assert "Megaflow: hit after 1 subtable probe(s)" in out
    assert "Upcall" not in out


def test_trace_follows_conntrack_recirculation(world):
    host, vs, (p1, _a1), _p2 = world
    of = OpenFlowConnection(vs.bridge("br0"))
    of.add_flow(0, 20, Match(), [CtAction(zone=1, commit=True, table=1)])
    of.add_flow(1, 10, Match(), [OutputAction("p2")])
    out = OvsAppctl(vs).ofproto_trace(udp_pkt(), "p1")
    assert "Pass 1" in out and "Pass 2" in out
    assert "actions: ct(zone=1,commit,table=1)" in out
    assert "-> ct(zone=1,commit): verdict new|trk " \
           "(trace: nothing committed)" in out
    assert "-> recirc(0x1)" in out
    # Pass 2 sees the conntrack verdict in its flow.
    assert "recirc_id=0x1,in_port=2,ct_state=new|trk" in out
    assert "-> output to port 3 (p2)" in out


def test_trace_unknown_port_and_kernel_datapath():
    host = Host("k", n_cpus=2)
    vs = host.install_ovs("netdev")
    vs.add_bridge("br0")
    appctl = OvsAppctl(vs)
    assert "no datapath port" in appctl.ofproto_trace(udp_pkt(), "nope")
    host2 = Host("k2", n_cpus=2)
    vs2 = host2.install_ovs("system")
    assert "needs the userspace datapath" in \
        OvsAppctl(vs2).ofproto_trace(udp_pkt(), "p1")


def test_trace_is_deterministic(world):
    host, vs, (p1, _a1), _p2 = world
    appctl = OvsAppctl(vs)
    assert (appctl.ofproto_trace(udp_pkt(), "p1")
            == appctl.ofproto_trace(udp_pkt(), "p1"))


# ---------------------------------------------------------------------------
# The read-only/rollback contract.
# ---------------------------------------------------------------------------
def _state_snapshot(vs, pmd):
    dpif = vs.dpif_netdev
    br = vs.ofproto.bridges["br0"]
    return {
        "emc": (pmd.emc.hits, pmd.emc.misses, pmd.emc.insertions,
                pmd.emc.occupancy, pmd.emc.displacements),
        "megaflow": (dpif.megaflows.hits, dpif.megaflows.misses,
                     len(dpif.megaflows), dpif.megaflows.version),
        "megaflow_pkts": sorted(
            (e.n_packets, e.n_bytes) for e in dpif.megaflows.entries()),
        "conntrack": len(dpif.conntrack),
        "translations": vs.ofproto.n_translations,
        "recirc": (vs.ofproto._next_recirc,
                   dict(vs.ofproto._recirc_ids)),
        "tables": {
            tid: (t.n_lookups, t.n_matches, len(t))
            for tid, t in br.tables.items()
        },
        "rule_pkts": [
            (r.table_id, r.priority, r.n_packets)
            for t in br.tables.values() for r in t.rules()
        ],
        "dpif_stats": (dpif.stats.packets, dpif.stats.upcalls,
                       dpif.stats.emc_hits, dpif.stats.megaflow_hits),
    }


def test_trace_mid_run_leaves_every_ledger_byte_unchanged(world):
    """The acceptance gate: run the same workload twice, once with
    ofproto/trace calls interleaved between bursts, and require the
    trace ledger, cache state, OpenFlow counters and recirc-id space to
    come out byte-identical."""

    def run(with_trace_calls: bool):
        host = Host("trace", n_cpus=4)
        vs = host.install_ovs("netdev")
        vs.add_bridge("br0")
        p1, a1 = vs.add_sim_port("br0", "p1")
        vs.add_sim_port("br0", "p2")
        of = OpenFlowConnection(vs.bridge("br0"))
        of.add_flow(0, 20, Match(), [CtAction(zone=1, commit=True,
                                              table=1)])
        of.add_flow(1, 10, Match(), [OutputAction("p2")])
        pmd = _pmd(host, vs, p1)
        appctl = OvsAppctl(vs)
        with trace.recording() as rec:
            for burst in range(3):
                a1.inject([udp_pkt() for _ in range(8)])
                pmd.run_until_idle()
                if with_trace_calls:
                    appctl.ofproto_trace(udp_pkt(), "p1", emc=pmd.emc)
                    appctl.ofproto_trace(udp_pkt(), "p1")
        return rec.ledger(), _state_snapshot(vs, pmd)

    plain_ledger, plain_state = run(False)
    traced_ledger, traced_state = run(True)
    assert traced_ledger == plain_ledger
    assert traced_state == plain_state


def test_trace_rolls_back_openflow_counters(world):
    host, vs, (p1, _a1), _p2 = world
    before = _state_snapshot(vs, _pmd(host, vs, p1))
    OvsAppctl(vs).ofproto_trace(udp_pkt(), "p1")
    after = _state_snapshot(vs, _pmd(host, vs, p1))
    assert after == before


# ---------------------------------------------------------------------------
# fastpath/show.
# ---------------------------------------------------------------------------
def test_fastpath_show_lists_layers_and_jit_counts(world):
    from repro.ebpf import jit
    from repro.ebpf.programs import drop_program
    from repro.ebpf.xdp import XdpContext

    host, vs, _p1, _p2 = world
    appctl = OvsAppctl(vs)
    out = appctl.fastpath_show()
    assert "batch-classify: on" in out
    assert "wall-clock memos: on" in out
    assert "ebpf-jit: on" in out

    jit.reset_stats()
    assert "(no eBPF programs run yet)" in appctl.fastpath_show()
    program = drop_program()
    XdpContext(program).run(bytes(60))
    out = appctl.fastpath_show()
    assert program.name in out
    st = jit.stats_for(program.name)
    assert st.jit_runs == 1 and st.compiled
    with jit.disabled():
        assert "ebpf-jit: off (EBPF_JIT=0)" in appctl.fastpath_show()


def test_fastpath_show_lists_dpjit_counts(world):
    import re

    from repro.ovs import dpjit

    host, vs, _p1, _p2 = world
    appctl = OvsAppctl(vs)
    out = appctl.fastpath_show()
    assert "dp-jit: on" in out
    m = re.search(r"dp-jit megaflows: compiled (\d+)\s+declined (\d+)"
                  r"\s+invalidated (\d+)\s+dispatched (\d+)", out)
    assert m, out
    s = dpjit.STATS
    assert tuple(int(x) for x in m.groups()) == (
        s.compiled, s.declined, s.invalidated, s.dispatched)
    with dpjit.disabled():
        assert "dp-jit: off (DP_JIT=0)" in appctl.fastpath_show()


# ---------------------------------------------------------------------------
# metrics/show and coverage/show.
# ---------------------------------------------------------------------------
def test_metrics_show_renders_attached_sampler(world):
    host, vs, (p1, a1), _p2 = world
    pmd = _pmd(host, vs, p1)
    appctl = OvsAppctl(vs)
    assert appctl.metrics_show() == "(no metrics sampler attached)"
    sampler = MetricsSampler(interval_ns=1000.0)
    with trace.recording() as rec:
        rec.sampler = sampler
        a1.inject([udp_pkt() for _ in range(32)])
        pmd.run_until_idle()
        out = appctl.metrics_show()
    assert out.startswith(f"metrics sampler: {len(sampler.samples)} "
                          f"samples, interval 1000 virtual ns")
    assert "latest sample (t=" in out
    assert "dp.rx_packets" in out
    assert "ns per packet (streaming" in out
    # Explicit sampler works without an active recorder.
    assert appctl.metrics_show(sampler=sampler) == out


def test_coverage_show_has_rate_columns(world):
    host, vs, (p1, a1), _p2 = world
    pmd = _pmd(host, vs, p1)
    appctl = OvsAppctl(vs)
    with trace.recording() as rec:
        a1.inject([udp_pkt() for _ in range(4)])
        pmd.run_until_idle()
    out = appctl.coverage_show(recorder=rec)
    header = out.splitlines()[0]
    assert "Event" in header and "Total" in header and "Avg/s" in header
    emc_line = next(l for l in out.splitlines() if l.startswith("emc.hit"))
    count = rec.counters["emc.hit"]
    rate = count / (rec.cpu_charged_ns / 1e9)
    assert f"{count:>12d}" in emc_line
    assert f"{rate:>13.1f}/s" in emc_line


def test_coverage_show_rate_na_without_charges():
    rec = trace.TraceRecorder()
    rec.count("some.event", 3)
    host = Host("h", n_cpus=2)
    vs = host.install_ovs("netdev")
    out = OvsAppctl(vs).coverage_show(recorder=rec)
    assert "n/a" in out
