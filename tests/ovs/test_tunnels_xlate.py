"""Tunnel translation: the §4 route/neighbor-replica resolution path."""

import pytest

from repro.kernel.kernel import Kernel
from repro.kernel.netdev import NetDevice, Wire
from repro.kernel.nic import PhysicalNic
from repro.net.addresses import ip_to_int
from repro.net.flow import extract_flow
from repro.net.tunnel import decapsulate
from repro.ovs import odp
from repro.ovs.emc import ExactMatchCache
from repro.ovs.match import Match
from repro.ovs.ofactions import OutputAction, PopTunnel
from repro.ovs.openflow import OpenFlowConnection
from repro.ovs.vswitchd import VSwitchd
from repro.sim.cpu import CpuCategory, CpuModel, ExecContext

from .conftest import mac, udp_pkt


@pytest.fixture
def world():
    cpu = CpuModel(8)
    kernel = Kernel(cpu)
    vs = VSwitchd(kernel, datapath_type="netdev")
    vs.add_bridge("br-int")
    # Underlay uplink: a kernel-visible NIC carried as a sim port so we
    # can capture what goes out.
    uplink = PhysicalNic("uplink0", mac(30))
    kernel.init_ns.register(uplink)
    uplink.set_up()
    kernel.init_ns.add_address("uplink0", "192.168.1.1", 24)
    kernel.init_ns.neighbors.update(
        ip_to_int("192.168.1.2"), mac(99), uplink.ifindex, permanent=True
    )
    up_port, up_adapter = vs.add_sim_port("br-int", "up0")
    # Point the sim port at the uplink device for route resolution.
    vs.dpif_netdev.ports[up_port.dp_port_no].device = uplink
    tun = vs.add_tunnel_port("br-int", "geneve0", "geneve",
                             "192.168.1.2", key=77)
    vm_port, vm_adapter = vs.add_sim_port("br-int", "vm1")
    ctx = ExecContext(cpu, 1, CpuCategory.USER)
    emc = ExactMatchCache()
    of = OpenFlowConnection(vs.bridge("br-int"))
    return vs, of, (vm_port, vm_adapter), (up_port, up_adapter), tun, ctx, emc


def test_output_to_tunnel_encapsulates(world):
    vs, of, (vm_port, vm_a), (up_port, up_a), tun, ctx, emc = world
    of.add_flow(0, 10, Match(in_port=vm_port.ofport),
                [OutputAction("geneve0")])
    inner = udp_pkt()
    vs.dpif_netdev.process_batch([inner], vm_port.dp_port_no, ctx, emc)
    assert len(up_a.transmitted) == 1
    outer = up_a.transmitted[0]
    ttype, vni, src, dst, inner_bytes = decapsulate(outer.data)
    assert ttype == "geneve"
    assert vni == 77
    assert src == ip_to_int("192.168.1.1")
    assert dst == ip_to_int("192.168.1.2")
    assert inner_bytes == inner.data
    # Outer MACs came from the neighbor replica.
    assert outer.data[0:6] == mac(99).to_bytes()


def test_tunnel_without_route_drops(world):
    vs, of, (vm_port, vm_a), (up_port, up_a), tun, ctx, emc = world
    vs.add_tunnel_port("br-int", "geneve1", "geneve", "203.0.113.9", key=1)
    of.add_flow(0, 10, Match(in_port=vm_port.ofport),
                [OutputAction("geneve1")])
    vs.dpif_netdev.process_batch([udp_pkt()], vm_port.dp_port_no, ctx, emc)
    assert up_a.transmitted == []
    assert vs.dpif_netdev.stats.dropped == 1


def test_pop_tunnel_reenters_pipeline_with_tun_metadata(world):
    vs, of, (vm_port, vm_a), (up_port, up_a), tun, ctx, emc = world
    # Outbound to build the encapsulated frame.
    of.add_flow(0, 10, Match(in_port=vm_port.ofport),
                [OutputAction("geneve0")])
    vs.dpif_netdev.process_batch([udp_pkt()], vm_port.dp_port_no, ctx, emc)
    outer = up_a.transmitted[0]

    # Inbound: uplink sees Geneve -> pop -> match tun_id -> to the VM.
    of.add_flow(0, 20, Match(in_port=up_port.ofport, nw_proto=17,
                             tp_dst=6081),
                [PopTunnel("geneve0")])
    of.add_flow(0, 5, Match(in_port=up_port.ofport), [])
    of.add_flow(0, 30, Match(in_port=tun.ofport, tun_id=77),
                [OutputAction("vm1")])
    # Swap outer IPs/MACs as the remote host would have sent it.
    vs.dpif_netdev.process_batch([outer], up_port.dp_port_no, ctx, emc)
    assert len(vm_a.transmitted) == 1
    assert vm_a.transmitted[0].data == udp_pkt().data


def test_translation_emits_tunnel_push_action(world):
    vs, of, (vm_port, vm_a), (up_port, up_a), tun, ctx, emc = world
    of.add_flow(0, 10, Match(), [OutputAction("geneve0")])
    key = extract_flow(udp_pkt().data, in_port=vm_port.dp_port_no)
    result = vs.ofproto.translate(key)
    assert len(result.actions) == 1
    act = result.actions[0]
    assert isinstance(act, odp.TunnelPush)
    assert act.out_port == up_port.dp_port_no
    assert act.config.vni == 77
