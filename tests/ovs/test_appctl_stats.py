"""pmd-stats-show / pmd-perf-show / coverage-show populated by real runs."""

import pytest

from repro.hosts.host import Host
from repro.ovs.appctl import OvsAppctl
from repro.ovs.match import Match
from repro.ovs.ofactions import OutputAction
from repro.ovs.openflow import OpenFlowConnection
from repro.ovs.pmd import PmdThread
from repro.sim import trace

from .conftest import udp_pkt


@pytest.fixture
def world():
    host = Host("stats", n_cpus=4)
    vs = host.install_ovs("netdev")
    vs.add_bridge("br0")
    p1, a1 = vs.add_sim_port("br0", "p1")
    p2, a2 = vs.add_sim_port("br0", "p2")
    of = OpenFlowConnection(vs.bridge("br0"))
    of.add_flow(0, 10, Match(), [OutputAction("p2")])
    return host, vs, (p1, a1), (p2, a2)


def test_pmd_stats_show_attributes_per_core(world):
    host, vs, (p1, a1), _p2 = world
    pmd1 = PmdThread(vs.dpif_netdev, host.cpu, core=1)
    pmd1.add_rxq(vs.dpif_netdev.ports[p1.dp_port_no], 0)
    pmd2 = PmdThread(vs.dpif_netdev, host.cpu, core=2)
    pmd2.add_rxq(vs.dpif_netdev.ports[p1.dp_port_no], 0)

    # pmd1 takes the cold start: 1 upcall, then 31 EMC hits.
    a1.inject([udp_pkt() for _ in range(32)])
    pmd1.run_until_idle()
    # pmd2's private EMC is cold, but the shared megaflow cache is warm:
    # its first packet is a megaflow hit, never an upcall.
    a1.inject([udp_pkt() for _ in range(8)])
    pmd2.run_until_idle()

    assert pmd1.stats.upcalls == 1 and pmd1.stats.emc_hits == 31
    assert pmd2.stats.upcalls == 0 and pmd2.stats.megaflow_hits == 1
    assert pmd2.stats.emc_hits == 7

    out = OvsAppctl(vs).pmd_stats_show([pmd1, pmd2])
    section1, section2 = out.split("pmd thread on core 2:")
    assert "core 1" in section1
    assert "packets processed: 32" in section1
    assert "emc hits: 31" in section1
    assert "miss with success upcall: 1" in section1
    assert "miss with failed upcall: 0" in section1
    assert "packets processed: 8" in section2
    assert "megaflow hits: 1" in section2
    assert "miss with success upcall: 0" in section2
    # Cycles come from consumed virtual time and must be populated.
    assert pmd1.cycles_ns > 0
    assert "processing cycles: 0 ns" not in section1


def test_pmd_stats_show_counts_failed_upcalls(world):
    host, vs, (p1, a1), _p2 = world
    vs.dpif_netdev.upcall_fn = None  # no slow path wired
    pmd = PmdThread(vs.dpif_netdev, host.cpu, core=1)
    pmd.add_rxq(vs.dpif_netdev.ports[p1.dp_port_no], 0)
    a1.inject([udp_pkt()])
    pmd.run_until_idle()
    out = OvsAppctl(vs).pmd_stats_show([pmd])
    assert "miss with failed upcall: 1" in out


def test_pmd_perf_show_reads_the_trace_ledger(world):
    host, vs, (p1, a1), _p2 = world
    pmd = PmdThread(vs.dpif_netdev, host.cpu, core=1)
    pmd.add_rxq(vs.dpif_netdev.ports[p1.dp_port_no], 0)
    appctl = OvsAppctl(vs)
    with trace.recording() as rec:
        a1.inject([udp_pkt() for _ in range(16)])
        pmd.run_until_idle()
        out = appctl.pmd_perf_show([pmd])
    assert "core 1" in out
    assert "flow_extract" in out and "emc" in out
    assert "total" in out
    # Explicit recorder works identically outside the context.
    assert appctl.pmd_perf_show([pmd], recorder=rec) == out


def test_batch_counters_under_load(world):
    """Back-pressure builds real bursts: with 64 packets queued and a
    32-packet batch size, the mean rx batch size must exceed 1 and the
    histogram must account for every packet."""
    host, vs, (p1, a1), _p2 = world
    pmd = PmdThread(vs.dpif_netdev, host.cpu, core=1)
    pmd.add_rxq(vs.dpif_netdev.ports[p1.dp_port_no], 0)
    a1.inject([udp_pkt() for _ in range(64)])
    pmd.run_until_idle()

    s = pmd.stats
    assert s.batches > 0
    assert pmd.avg_batch == s.avg_batch > 1.0
    assert sum(size * n for size, n in s.batch_hist.items()) == s.packets
    assert s.batch_hist.get(32) == 2  # full bursts under load

    appctl = OvsAppctl(vs)
    stats_out = appctl.pmd_stats_show([pmd])
    assert f"avg. packets per output batch: {s.avg_batch:.2f}" in stats_out
    perf_out = appctl.pmd_perf_show([pmd])
    assert f"rx batches: {s.batches} (avg size: {s.avg_batch:.2f})" \
        in perf_out
    assert "packets-per-batch histogram: 32:2" in perf_out


def test_batch_histogram_records_singletons(world):
    host, vs, (p1, a1), _p2 = world
    pmd = PmdThread(vs.dpif_netdev, host.cpu, core=1)
    pmd.add_rxq(vs.dpif_netdev.ports[p1.dp_port_no], 0)
    for _ in range(3):
        a1.inject([udp_pkt()])
        pmd.run_until_idle()
    assert pmd.stats.batch_hist == {1: 3}
    assert pmd.avg_batch == 1.0


def test_pmd_perf_show_without_recorder_says_so(world):
    host, vs, (p1, _a1), _p2 = world
    pmd = PmdThread(vs.dpif_netdev, host.cpu, core=1)
    out = OvsAppctl(vs).pmd_perf_show([pmd])
    assert "no trace recorder" in out


def test_coverage_show_lists_event_counters(world):
    host, vs, (p1, a1), _p2 = world
    pmd = PmdThread(vs.dpif_netdev, host.cpu, core=1)
    pmd.add_rxq(vs.dpif_netdev.ports[p1.dp_port_no], 0)
    appctl = OvsAppctl(vs)
    assert appctl.coverage_show() == "(no events recorded)"
    with trace.recording() as rec:
        a1.inject([udp_pkt() for _ in range(4)])
        pmd.run_until_idle()
    out = appctl.coverage_show(recorder=rec)
    assert "emc.hit" in out
    assert "dp.upcall" in out
    assert "dp.rx_packets" in out
