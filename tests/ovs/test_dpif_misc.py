"""dpif-netdev odds and ends: port lifecycle, odd actions, drops."""

import pytest

from repro.hosts.host import Host
from repro.ovs import odp
from repro.ovs.emc import ExactMatchCache
from repro.ovs.match import Match
from repro.ovs.ofactions import ControllerAction, OutputAction
from repro.ovs.openflow import OpenFlowConnection
from repro.sim.cpu import CpuCategory, ExecContext

from .conftest import udp_pkt


@pytest.fixture
def world():
    host = Host("misc", n_cpus=2)
    vs = host.install_ovs("netdev")
    vs.add_bridge("br0")
    p1, a1 = vs.add_sim_port("br0", "p1")
    p2, a2 = vs.add_sim_port("br0", "p2")
    ctx = ExecContext(host.cpu, 0, CpuCategory.USER)
    return host, vs, (p1, a1), (p2, a2), ctx, ExactMatchCache()


def test_port_lifecycle(world):
    host, vs, (p1, _a1), _p2, _ctx, _emc = world
    dpif = vs.dpif_netdev
    assert dpif.port_no("p1") == p1.dp_port_no
    dpif.del_port("p1")
    with pytest.raises(KeyError):
        dpif.port_no("p1")
    with pytest.raises(KeyError):
        dpif.del_port("p1")
    with pytest.raises(ValueError):
        dpif.add_port("p2", object())  # duplicate name


def test_truncate_action(world):
    host, vs, (p1, a1), (p2, a2), ctx, emc = world
    key_pkt = udp_pkt()
    from repro.net.flow import EXACT_MASK, extract_flow

    key = extract_flow(key_pkt.data, in_port=p1.dp_port_no)
    vs.dpif_netdev.megaflows.insert(
        key, EXACT_MASK, (odp.Trunc(20), odp.Output(p2.dp_port_no)))
    vs.dpif_netdev.process_batch([key_pkt], p1.dp_port_no, ctx, emc)
    [out] = a2.take_transmitted()
    assert len(out.data) == 20


def test_controller_action_charges_slowpath(world):
    host, vs, (p1, a1), _p2, ctx, emc = world
    of = OpenFlowConnection(vs.bridge("br0"))
    of.add_flow(0, 10, Match(), [ControllerAction("dfw-log")])
    before = host.cpu.busy_ns()
    vs.dpif_netdev.process_batch([udp_pkt()], p1.dp_port_no, ctx, emc)
    from repro.sim.costs import DEFAULT_COSTS

    assert host.cpu.busy_ns() - before >= DEFAULT_COSTS.userspace_slowpath_ns


def test_output_to_removed_port_counts_drop(world):
    host, vs, (p1, a1), (p2, a2), ctx, emc = world
    of = OpenFlowConnection(vs.bridge("br0"))
    of.add_flow(0, 10, Match(in_port=p1.ofport), [OutputAction("p2")])
    vs.dpif_netdev.process_batch([udp_pkt()], p1.dp_port_no, ctx, emc)
    assert len(a2.take_transmitted()) == 1
    # Hot-unplug p2; the cached flow still points at its port number.
    vs.dpif_netdev.del_port("p2")
    dropped = vs.dpif_netdev.stats.dropped
    vs.dpif_netdev.process_batch([udp_pkt()], p1.dp_port_no, ctx, emc)
    assert vs.dpif_netdev.stats.dropped == dropped + 1


def test_malformed_tunnel_pop_drops(world):
    host, vs, (p1, a1), _p2, ctx, emc = world
    from repro.net.flow import EXACT_MASK, extract_flow

    pkt = udp_pkt()  # not encapsulated at all
    key = extract_flow(pkt.data, in_port=p1.dp_port_no)
    vs.dpif_netdev.megaflows.insert(key, EXACT_MASK,
                                    (odp.TunnelPop(vport=99),))
    dropped = vs.dpif_netdev.stats.dropped
    vs.dpif_netdev.process_batch([pkt], p1.dp_port_no, ctx, emc)
    assert vs.dpif_netdev.stats.dropped == dropped + 1


def test_recirc_depth_guard(world):
    host, vs, (p1, a1), _p2, ctx, emc = world
    # A self-recirculating flow must terminate at MAX_RECIRC_PASSES.
    from repro.net.flow import extract_flow, mask_from_fields

    pkt = udp_pkt()
    for rid in range(12):
        key = extract_flow(pkt.data, in_port=p1.dp_port_no, recirc_id=rid)
        vs.dpif_netdev.megaflows.insert(
            key, mask_from_fields(in_port=-1, recirc_id=-1),
            (odp.Recirc(rid + 1),))
    vs.dpif_netdev.process_batch([pkt], p1.dp_port_no, ctx, emc)
    assert vs.dpif_netdev.stats.dropped >= 1


def test_main_cli_arguments():
    from repro.__main__ import EXPERIMENTS, main

    assert main(["--list"]) == 0
    assert main(["definitely-not-an-experiment"]) == 2
    assert set(EXPERIMENTS) >= {"fig2", "table2", "table3", "fig9",
                                "fig10", "fig11", "table5", "fig12",
                                "fig8", "fig1"}
