"""End-to-end tests of the kernel datapath under vswitchd (Figure 7a)."""

import pytest

from repro.kernel.kernel import Kernel
from repro.kernel.netdev import NetDevice
from repro.net.addresses import ip_to_int
from repro.ovs.match import Match
from repro.ovs.ofactions import CtAction, GotoTable, OutputAction
from repro.ovs.openflow import OpenFlowConnection
from repro.ovs.vswitchd import VSwitchd
from repro.sim.costs import DEFAULT_COSTS
from repro.sim.cpu import CpuCategory, CpuModel, ExecContext

from .conftest import mac, tcp_pkt, udp_pkt


@pytest.fixture
def world():
    cpu = CpuModel(8)
    kernel = Kernel(cpu)
    vs = VSwitchd(kernel, datapath_type="system")
    vs.add_bridge("br0")
    p1 = NetDevice("p1", mac(21))
    p2 = NetDevice("p2", mac(22))
    for d in (p1, p2):
        kernel.init_ns.register(d)
        d.set_up()
    vs.add_system_port("br0", p1)
    vs.add_system_port("br0", p2)
    sent = []
    p2._transmit = lambda pkt, c: (sent.append(pkt), True)[1]
    ctx = ExecContext(cpu, 0, CpuCategory.SOFTIRQ)
    of = OpenFlowConnection(vs.bridge("br0"))
    return vs, of, p1, sent, ctx, cpu


def test_first_packet_upcalls_then_kernel_handles(world):
    vs, of, p1, sent, ctx, cpu = world
    of.add_flow(0, 10, Match(nw_dst=ip_to_int("10.0.0.2")),
                [OutputAction("p2")])
    p1.deliver(udp_pkt(), ctx)
    assert len(sent) == 1
    assert vs.dpif_netlink.dp.n_upcalls == 1
    assert vs.dpif_netlink.n_installed_flows == 1
    # Second packet: pure kernel fast path, no new upcall.
    p1.deliver(udp_pkt(), ctx)
    assert len(sent) == 2
    assert vs.dpif_netlink.dp.n_upcalls == 1


def test_kernel_upcall_cost_dwarfs_fast_path(world):
    vs, of, p1, sent, ctx, cpu = world
    of.add_flow(0, 10, Match(), [OutputAction("p2")])
    cpu.reset()
    p1.deliver(udp_pkt(), ctx)
    first_cost = cpu.busy_ns()
    cpu.reset()
    p1.deliver(udp_pkt(), ctx)
    second_cost = cpu.busy_ns()
    assert first_cost > second_cost + DEFAULT_COSTS.upcall_ns * 0.9


def test_wildcarded_kernel_flow_covers_microflows(world):
    vs, of, p1, sent, ctx, cpu = world
    of.add_flow(0, 10, Match(nw_dst=ip_to_int("10.0.0.2")),
                [OutputAction("p2")])
    p1.deliver(udp_pkt(sport=1), ctx)
    p1.deliver(udp_pkt(sport=2), ctx)  # same megaflow, no second upcall
    assert vs.dpif_netlink.dp.n_upcalls == 1
    assert len(sent) == 2


def test_multi_table_and_ct_through_kernel(world):
    vs, of, p1, sent, ctx, cpu = world
    from repro.kernel.conntrack import CT_NEW

    of.add_flow(0, 10, Match(nw_proto=6), [GotoTable(1)])
    of.add_flow(1, 10, Match(), [CtAction(zone=3, commit=True, table=2)])
    of.add_flow(2, 10, Match(ct_state=(CT_NEW, CT_NEW)),
                [OutputAction("p2")])
    p1.deliver(tcp_pkt(flags=0x02), ctx)
    assert len(sent) == 1
    # conntrack state lives in the *kernel* namespace table.
    assert len(vs.kernel.init_ns.conntrack) == 1


def test_vswitchd_restart_preserves_kernel_conntrack(world):
    vs, of, p1, sent, ctx, cpu = world
    of.add_flow(0, 10, Match(), [CtAction(zone=1, commit=True, table=2)])
    of.add_flow(2, 1, Match(), [OutputAction("p2")])
    p1.deliver(tcp_pkt(flags=0x02), ctx)
    assert len(vs.kernel.init_ns.conntrack) == 1
    vs.restart()
    # Kernel conntrack survives an ovs-vswitchd restart; datapath flows
    # do not (they are re-populated by upcalls).
    assert len(vs.kernel.init_ns.conntrack) == 1
    assert len(vs.dpif_netlink.dp.flows) == 0


def test_requires_module_for_system_type():
    kernel = Kernel(CpuModel(1))
    vs = VSwitchd(kernel, datapath_type="system")
    assert kernel.module_loaded  # vswitchd modprobed it


def test_netdev_type_never_loads_module():
    kernel = Kernel(CpuModel(1))
    VSwitchd(kernel, datapath_type="netdev")
    assert not kernel.module_loaded  # the AF_XDP deployment story


def test_unknown_datapath_type():
    with pytest.raises(ValueError):
        VSwitchd(Kernel(CpuModel(1)), datapath_type="exotic")
