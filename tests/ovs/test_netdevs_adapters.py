"""The port adapters that plug I/O mechanisms into dpif-netdev."""

import pytest

from repro.afxdp.driver import AfxdpDriver
from repro.dpdk.ethdev import bind_device
from repro.hosts.host import Host
from repro.kernel.netdev import NetDevice, Wire
from repro.kernel.tap import TapDevice
from repro.net.addresses import MacAddress
from repro.net.builder import make_udp_packet
from repro.ovs.netdevs import (
    AfxdpAdapter,
    DpdkAdapter,
    InternalTapAdapter,
    SimAdapter,
    TapAdapter,
    VhostAdapter,
)
from repro.sim.cpu import CpuCategory, CpuModel, ExecContext
from repro.vhost.vhostuser import VhostUserPort
from repro.vhost.virtio import VirtioNic


def mac(i):
    return MacAddress.local(i)


PKT = make_udp_packet(mac(1), mac(2), "10.0.0.1", "10.0.0.2")


@pytest.fixture
def cpu():
    return CpuModel(4)


@pytest.fixture
def ctx(cpu):
    return ExecContext(cpu, 0, CpuCategory.USER)


@pytest.fixture
def softirq(cpu):
    return ExecContext(cpu, 1, CpuCategory.SOFTIRQ)


def _wired_nic(host, name="ens1", n_queues=2):
    nic = host.add_nic(name, n_queues=n_queues)
    peer = NetDevice(f"peer-{name}", mac(90))
    peer.set_up()
    peer.set_rx_handler(lambda pkt, ctx: None)
    Wire(nic, peer)
    return nic


class TestAfxdpAdapter:
    def test_rx_tx_round_trip(self, ctx, softirq):
        host = Host("a", n_cpus=4)
        nic = _wired_nic(host)
        driver = AfxdpDriver(nic)
        driver.setup()
        adapter = AfxdpAdapter(driver)
        assert adapter.n_rxq == 2
        nic.host_receive(PKT)
        queue = nic.select_queue(PKT)
        host.kernel.service_nic(nic)
        pkts = adapter.rx_burst(ctx, queue=queue)
        assert len(pkts) == 1
        assert adapter.tx_burst(pkts, ctx, queue=queue) == 1


class TestDpdkAdapter:
    def test_rx_tx(self, ctx):
        host = Host("d", n_cpus=4)
        nic = _wired_nic(host)
        eth = bind_device(host.kernel.init_ns, "ens1")
        adapter = DpdkAdapter(eth)
        assert adapter.n_rxq == 2
        nic.host_receive(PKT)
        queue = nic.select_queue(PKT)
        pkts = adapter.rx_burst(ctx, queue=queue)
        assert len(pkts) == 1
        assert adapter.tx_burst(pkts, ctx) == 1


class TestVhostAdapter:
    def test_rx_tx(self, ctx):
        guest = VirtioNic("eth0", mac(5))
        guest.set_up()
        port = VhostUserPort("vhost-vm", guest)
        adapter = VhostAdapter(port)
        guest_ctx = ExecContext(CpuModel(1), 0, CpuCategory.GUEST)
        guest.transmit(PKT.clone(), guest_ctx)
        pkts = adapter.rx_burst(ctx)
        assert len(pkts) == 1
        assert adapter.tx_burst(pkts, ctx) == 1
        assert len(guest.rx_queue) == 1


class TestTapAdapter:
    def test_tx_into_kernel_face(self, ctx):
        host = Host("t", n_cpus=2)
        dev = NetDevice("veth0", mac(7))
        host.kernel.init_ns.register(dev)
        dev.set_up()
        adapter = TapAdapter(dev)
        sent = []
        dev._transmit = lambda pkt, c: (sent.append(pkt), True)[1]
        assert adapter.tx_burst([PKT], ctx) == 1
        assert len(sent) == 1

    def test_rx_from_kernel_face(self, ctx):
        dev = NetDevice("veth0", mac(7))
        dev.set_up()
        adapter = TapAdapter(dev)
        dev.deliver(PKT, ctx)
        assert adapter.pending() == 1
        assert len(adapter.rx_burst(ctx)) == 1


class TestInternalTapAdapter:
    def test_bidirectional(self, ctx):
        tap = TapDevice("br0", mac(8))
        tap.set_up()
        adapter = InternalTapAdapter(tap)
        # Kernel stack sends out br0 -> OVS reads it.
        tap.transmit(PKT, ctx)
        assert adapter.pending() == 1
        pkts = adapter.rx_burst(ctx)
        assert len(pkts) == 1
        # OVS outputs to the internal port -> the kernel face receives.
        got = []
        tap.set_rx_handler(lambda pkt, c: got.append(pkt))
        adapter.tx_burst(pkts, ctx)
        assert len(got) == 1

    def test_rx_burst_stops_at_empty(self, ctx):
        tap = TapDevice("br0", mac(8))
        tap.set_up()
        adapter = InternalTapAdapter(tap)
        assert adapter.rx_burst(ctx, batch=4) == []


class TestSimAdapter:
    def test_inject_and_collect(self, ctx):
        adapter = SimAdapter()
        adapter.inject([PKT, PKT])
        assert len(adapter.rx_burst(ctx, batch=1)) == 1
        assert len(adapter.rx_burst(ctx)) == 1
        adapter.tx_burst([PKT], ctx)
        assert len(adapter.take_transmitted()) == 1
        assert adapter.take_transmitted() == []
