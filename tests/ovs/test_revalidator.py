"""The revalidator: megaflow aging and re-translation on rule changes."""

import pytest

from repro.hosts.host import Host
from repro.net.addresses import ip_to_int
from repro.ovs.emc import ExactMatchCache
from repro.ovs.match import Match
from repro.ovs.ofactions import OutputAction
from repro.ovs.openflow import OpenFlowConnection
from repro.sim.clock import SEC
from repro.sim.cpu import CpuCategory, ExecContext

from .conftest import udp_pkt


@pytest.fixture
def world():
    host = Host("reval", n_cpus=2)
    vs = host.install_ovs("netdev")
    vs.add_bridge("br0")
    p1, a1 = vs.add_sim_port("br0", "p1")
    p2, a2 = vs.add_sim_port("br0", "p2")
    p3, a3 = vs.add_sim_port("br0", "p3")
    of = OpenFlowConnection(vs.bridge("br0"))
    ctx = ExecContext(host.cpu, 0, CpuCategory.USER)
    emc = ExactMatchCache()
    return host, vs, of, (p1, a1), (p2, a2), (p3, a3), ctx, emc


def test_idle_flows_expire(world):
    host, vs, of, (p1, a1), (p2, a2), _p3, ctx, emc = world
    of.add_flow(0, 10, Match(in_port=p1.ofport), [OutputAction("p2")])
    vs.dpif_netdev.process_batch([udp_pkt()], p1.dp_port_no, ctx, emc)
    assert len(vs.dpif_netdev.megaflows) == 1
    host.clock.advance(20 * SEC)
    stats = vs.dpif_netdev.revalidate(max_idle_ns=10 * SEC)
    assert stats["removed_idle"] == 1
    assert len(vs.dpif_netdev.megaflows) == 0


def test_active_flows_survive(world):
    host, vs, of, (p1, a1), (p2, a2), _p3, ctx, emc = world
    of.add_flow(0, 10, Match(in_port=p1.ofport), [OutputAction("p2")])
    vs.dpif_netdev.process_batch([udp_pkt()], p1.dp_port_no, ctx, emc)
    host.clock.advance(9 * SEC)
    vs.dpif_netdev.process_batch([udp_pkt()], p1.dp_port_no, ctx, emc)
    host.clock.advance(5 * SEC)  # 14s since install, 5s since last use
    stats = vs.dpif_netdev.revalidate(max_idle_ns=10 * SEC)
    assert stats["removed_idle"] == 0
    assert stats["kept"] == 1


def test_rule_change_drops_stale_megaflow(world):
    """An OpenFlow rule change must not leave old decisions cached."""
    host, vs, of, (p1, a1), (p2, a2), (p3, a3), ctx, emc = world
    of.add_flow(0, 10, Match(in_port=p1.ofport), [OutputAction("p2")])
    pkt = udp_pkt()
    vs.dpif_netdev.process_batch([pkt.clone()], p1.dp_port_no, ctx, emc)
    assert len(a2.take_transmitted()) == 1

    # The controller repoints the traffic at p3.
    of.delete_flows(table_id=0)
    of.add_flow(0, 10, Match(in_port=p1.ofport), [OutputAction("p3")])
    stats = vs.dpif_netdev.revalidate(emcs=[emc])
    assert stats["removed_changed"] == 1

    vs.dpif_netdev.process_batch([pkt.clone()], p1.dp_port_no, ctx, emc)
    assert len(a3.take_transmitted()) == 1
    assert a2.take_transmitted() == []


def test_without_revalidation_stale_decision_persists(world):
    """The negative control: this is exactly why revalidators exist."""
    host, vs, of, (p1, a1), (p2, a2), (p3, a3), ctx, emc = world
    of.add_flow(0, 10, Match(in_port=p1.ofport), [OutputAction("p2")])
    pkt = udp_pkt()
    vs.dpif_netdev.process_batch([pkt.clone()], p1.dp_port_no, ctx, emc)
    a2.take_transmitted()
    of.delete_flows(table_id=0)
    of.add_flow(0, 10, Match(in_port=p1.ofport), [OutputAction("p3")])
    # No revalidate: the EMC still holds the old verdict.
    vs.dpif_netdev.process_batch([pkt.clone()], p1.dp_port_no, ctx, emc)
    assert len(a2.take_transmitted()) == 1  # stale!
    assert a3.take_transmitted() == []


def test_rule_deletion_drops_flow(world):
    host, vs, of, (p1, a1), (p2, a2), _p3, ctx, emc = world
    of.add_flow(0, 10, Match(in_port=p1.ofport), [OutputAction("p2")])
    vs.dpif_netdev.process_batch([udp_pkt()], p1.dp_port_no, ctx, emc)
    of.delete_flows(table_id=0)
    stats = vs.dpif_netdev.revalidate(emcs=[emc])
    # Translation now yields drop (empty actions) != cached output.
    assert stats["removed_changed"] == 1
    # Subsequent packets are dropped cleanly.
    dropped_before = vs.dpif_netdev.stats.dropped
    vs.dpif_netdev.process_batch([udp_pkt()], p1.dp_port_no, ctx, emc)
    assert vs.dpif_netdev.stats.dropped == dropped_before + 1


def test_megaflow_stats_accumulate(world):
    host, vs, of, (p1, a1), (p2, a2), _p3, ctx, emc = world
    of.add_flow(0, 10, Match(in_port=p1.ofport), [OutputAction("p2")])
    tiny_emc = ExactMatchCache(n_entries=2)
    # Distinct 5-tuples share the megaflow but thrash the tiny EMC, so
    # the megaflow's own counters see the traffic.
    for i in range(20):
        vs.dpif_netdev.process_batch([udp_pkt(sport=i + 1)],
                                     p1.dp_port_no, ctx, tiny_emc)
    [entry] = vs.dpif_netdev.megaflows.entries()
    assert entry.n_packets >= 10
    assert entry.n_bytes >= 10 * 60
