import pytest

from repro.ovs.match import Match
from repro.ovs.ofactions import OutputAction
from repro.ovs.ofproto import Bridge
from repro.ovs.openflow import FlowMod, FlowModCommand, OpenFlowConnection
from repro.ovs.ovsdb import OvsdbError, OvsdbServer


class TestOvsdb:
    def test_insert_and_find(self):
        db = OvsdbServer()
        txn = db.transact()
        txn.insert("Bridge", name="br0")
        txn.commit()
        [row] = db.find("Bridge", name="br0")
        assert row["datapath_type"] == "system"  # default

    def test_temp_uuid_resolution(self):
        db = OvsdbServer()
        txn = db.transact()
        iface = txn.insert("Interface", name="eth0")
        port = txn.insert("Port", name="eth0", interfaces=[iface])
        mapping = txn.commit()
        [port_row] = db.find("Port", name="eth0")
        assert port_row["interfaces"] == [mapping[iface]]
        assert db.get(mapping[iface])["name"] == "eth0"

    def test_transaction_atomicity(self):
        db = OvsdbServer()
        txn = db.transact()
        txn.insert("Bridge", name="br0")
        txn.insert("NoSuchTable", name="x")
        with pytest.raises(OvsdbError):
            txn.commit()
        assert db.find("Bridge", name="br0") == []  # nothing applied

    def test_duplicate_name_rejected(self):
        db = OvsdbServer()
        t1 = db.transact()
        t1.insert("Bridge", name="br0")
        t1.commit()
        t2 = db.transact()
        t2.insert("Bridge", name="br0")
        with pytest.raises(OvsdbError, match="already exists"):
            t2.commit()

    def test_type_validation(self):
        db = OvsdbServer()
        txn = db.transact()
        txn.insert("Interface", name="eth0", ofport="not-an-int")
        with pytest.raises(OvsdbError):
            txn.commit()

    def test_update_and_delete(self):
        db = OvsdbServer()
        txn = db.transact()
        u = txn.insert("Interface", name="eth0")
        mapping = txn.commit()
        real = mapping[u]
        txn2 = db.transact()
        txn2.update(real, type="afxdp")
        txn2.commit()
        assert db.get(real)["type"] == "afxdp"
        txn3 = db.transact()
        txn3.delete(real)
        txn3.commit()
        with pytest.raises(OvsdbError):
            db.get(real)

    def test_double_commit_rejected(self):
        db = OvsdbServer()
        txn = db.transact()
        txn.insert("Bridge", name="br0")
        txn.commit()
        with pytest.raises(OvsdbError):
            txn.commit()

    def test_watchers_notified(self):
        db = OvsdbServer()
        events = []
        db.watch(lambda: events.append(1))
        txn = db.transact()
        txn.insert("Bridge", name="br0")
        txn.commit()
        assert events == [1]


class TestOpenFlow:
    def _bridge(self):
        b = Bridge("br0")
        b.add_port("p1", 1)
        b.add_port("p2", 2)
        return b

    def test_add_and_dump(self):
        of = OpenFlowConnection(self._bridge())
        of.add_flow(0, 10, Match(nw_proto=17), [OutputAction("p2")])
        of.add_flow(1, 5, Match(), [OutputAction("p1")])
        assert of.flow_count() == 2
        assert len(of.dump_flows(0)) == 1
        assert len(of.dump_flows()) == 2

    def test_strict_delete(self):
        of = OpenFlowConnection(self._bridge())
        of.add_flow(0, 10, Match(nw_proto=17), [OutputAction("p2")])
        of.add_flow(0, 20, Match(nw_proto=17), [OutputAction("p1")])
        of.flow_mod(FlowMod(FlowModCommand.DELETE_STRICT, table_id=0,
                            priority=10, match=Match(nw_proto=17)))
        remaining = of.dump_flows(0)
        assert len(remaining) == 1
        assert remaining[0].priority == 20

    def test_loose_delete_subsumption(self):
        of = OpenFlowConnection(self._bridge())
        of.add_flow(0, 10, Match(nw_proto=17, tp_dst=53), [OutputAction("p2")])
        of.add_flow(0, 10, Match(nw_proto=6, tp_dst=80), [OutputAction("p2")])
        of.flow_mod(FlowMod(FlowModCommand.DELETE, table_id=0,
                            match=Match(nw_proto=17)))
        remaining = of.dump_flows(0)
        assert len(remaining) == 1
        assert remaining[0].match.fields()["nw_proto"][0] == 6

    def test_loose_delete_catchall_clears_table(self):
        of = OpenFlowConnection(self._bridge())
        of.add_flow(0, 10, Match(nw_proto=17), [OutputAction("p2")])
        of.add_flow(0, 20, Match(tp_dst=80), [OutputAction("p1")])
        of.flow_mod(FlowMod(FlowModCommand.DELETE, table_id=0, match=Match()))
        assert of.dump_flows(0) == []

    def test_delete_by_cookie(self):
        of = OpenFlowConnection(self._bridge())
        of.add_flow(0, 10, Match(nw_proto=17), [OutputAction("p2")], cookie=7)
        of.add_flow(0, 10, Match(nw_proto=6), [OutputAction("p2")], cookie=8)
        assert of.delete_flows(cookie=7) == 1
        assert of.flow_count() == 1

    def test_flow_mod_counter(self):
        of = OpenFlowConnection(self._bridge())
        of.add_flow(0, 1, Match(), [])
        of.delete_flows()
        assert of.n_flow_mods == 2
