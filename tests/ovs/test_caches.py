import pytest

from repro.net.flow import extract_flow, mask_from_fields
from repro.ovs.emc import ExactMatchCache
from repro.ovs.megaflow import MegaflowCache, union_masks

from .conftest import udp_pkt


def key(pkt=None, **kwargs):
    return extract_flow((pkt or udp_pkt()).data, **kwargs)


class TestEmc:
    def test_size_power_of_two(self):
        with pytest.raises(ValueError):
            ExactMatchCache(1000)

    def test_miss_then_hit(self):
        emc = ExactMatchCache()
        k = key()
        assert emc.lookup(k) is None
        emc.insert(k, "actions")
        assert emc.lookup(k) == "actions"
        assert emc.hits == 1
        assert emc.misses == 1

    def test_recirc_id_separates_entries(self):
        emc = ExactMatchCache()
        emc.insert(key(recirc_id=0), "pass1")
        emc.insert(key(recirc_id=1), "pass2")
        assert emc.lookup(key(recirc_id=0)) == "pass1"
        assert emc.lookup(key(recirc_id=1)) == "pass2"

    def test_eviction_on_collision_pressure(self):
        emc = ExactMatchCache(n_entries=8)
        keys = [key(udp_pkt(sport=i + 1)) for i in range(100)]
        for k in keys:
            emc.insert(k, "a")
        hits = sum(1 for k in keys if emc.lookup(k) is not None)
        assert hits < 100  # small cache cannot hold them all

    def test_evict_and_flush(self):
        emc = ExactMatchCache()
        k = key()
        emc.insert(k, "x")
        emc.evict(k)
        assert emc.lookup(k) is None
        emc.insert(k, "x")
        emc.flush()
        assert emc.lookup(k) is None

    def test_hit_rate(self):
        emc = ExactMatchCache()
        k = key()
        emc.insert(k, "x")
        emc.lookup(k)
        emc.lookup(key(udp_pkt(sport=42)))
        assert emc.hit_rate == pytest.approx(0.5)

    def test_charges_lookup_cost(self, ctx, cpu):
        from repro.sim.costs import DEFAULT_COSTS

        emc = ExactMatchCache()
        emc.lookup(key(), ctx)
        assert cpu.busy_ns() == pytest.approx(DEFAULT_COSTS.emc_hit_ns)


class TestMegaflow:
    MASK = mask_from_fields(nw_dst=-1, eth_type=-1)

    def test_wildcard_hit(self):
        mf = MegaflowCache()
        mf.insert(key(), self.MASK, ("fwd",))
        # Same dst, different sport: same megaflow.
        other = key(udp_pkt(sport=9999))
        assert mf.lookup(other) == ("fwd",)

    def test_masked_miss(self):
        mf = MegaflowCache()
        mf.insert(key(), self.MASK, ("fwd",))
        assert mf.lookup(key(udp_pkt(dst="10.0.0.99"))) is None

    def test_cost_scales_with_masks(self, ctx, cpu):
        from repro.sim.costs import DEFAULT_COSTS

        mf = MegaflowCache()
        for i in range(5):
            m = mask_from_fields(tp_src=-1, nw_dst=(1 << i))
            mf.insert(key(), m, (f"v{i}",))
        cpu.reset()
        mf.lookup(key(udp_pkt(dst="1.2.3.4", sport=7)), ctx)
        assert cpu.busy_ns() >= 5 * DEFAULT_COSTS.megaflow_subtable_ns

    def test_capacity(self):
        mf = MegaflowCache(max_flows=1)
        assert mf.insert(key(), self.MASK, ("a",))
        assert not mf.insert(key(udp_pkt(dst="9.9.9.9")), self.MASK, ("b",))

    def test_remove(self):
        mf = MegaflowCache()
        k = key()
        mf.insert(k, self.MASK, ("a",))
        assert mf.remove(k, self.MASK)
        assert not mf.remove(k, self.MASK)
        assert mf.lookup(k) is None
        assert mf.n_masks == 0

    def test_flush_and_hit_rate(self):
        mf = MegaflowCache()
        mf.insert(key(), self.MASK, ("a",))
        mf.lookup(key())
        mf.lookup(key(udp_pkt(dst="4.4.4.4")))
        assert mf.hit_rate == pytest.approx(0.5)
        mf.flush()
        assert len(mf) == 0


class TestUnionMasks:
    def test_union(self):
        a = mask_from_fields(nw_dst=0xFF000000)
        b = mask_from_fields(nw_dst=0x000000FF, tp_dst=-1)
        u = union_masks([a, b])
        from repro.net.flow import FlowKey

        idx_dst = FlowKey._fields.index("nw_dst")
        idx_tp = FlowKey._fields.index("tp_dst")
        assert u[idx_dst] == 0xFF0000FF
        assert u[idx_tp] == -1

    def test_empty(self):
        from repro.net.flow import N_FLOW_FIELDS

        assert union_masks([]) == tuple([0] * N_FLOW_FIELDS)
