"""NXM register semantics in translation (the NSX pipeline currency)."""

import pytest

from repro.kernel.kernel import Kernel
from repro.net.flow import FlowKey, extract_flow
from repro.ovs import odp
from repro.ovs.emc import ExactMatchCache
from repro.ovs.match import Match
from repro.ovs.ofactions import (
    CtAction,
    GotoTable,
    OutputAction,
    SetFieldAction,
)
from repro.ovs.openflow import OpenFlowConnection
from repro.ovs.vswitchd import VSwitchd
from repro.sim.cpu import CpuCategory, CpuModel, ExecContext

from .conftest import tcp_pkt, udp_pkt


@pytest.fixture
def world():
    cpu = CpuModel(4)
    kernel = Kernel(cpu)
    vs = VSwitchd(kernel, datapath_type="netdev")
    vs.add_bridge("br0")
    p1, a1 = vs.add_sim_port("br0", "p1")
    p2, a2 = vs.add_sim_port("br0", "p2")
    of = OpenFlowConnection(vs.bridge("br0"))
    ctx = ExecContext(cpu, 0, CpuCategory.USER)
    return vs, of, (p1, a1), (p2, a2), ctx, ExactMatchCache()


def test_flowkey_has_31_fields():
    # Table 3: "matching fields among all rules: 31".
    assert len(FlowKey._fields) == 31


def test_reg_setfield_not_emitted_to_datapath(world):
    vs, of, (p1, a1), (p2, a2), ctx, emc = world
    of.add_flow(0, 10, Match(), [SetFieldAction("reg0", 7), GotoTable(1)])
    of.add_flow(1, 10, Match(reg0=7), [OutputAction("p2")])
    key = extract_flow(udp_pkt().data, in_port=p1.dp_port_no)
    result = vs.ofproto.translate(key)
    # Only the Output survived into datapath actions; reg0 was consumed
    # during translation.
    assert all(not isinstance(a, odp.SetField) for a in result.actions)
    assert any(isinstance(a, odp.Output) for a in result.actions)


def test_reg_match_steers_pipeline(world):
    vs, of, (p1, a1), (p2, a2), ctx, emc = world
    of.add_flow(0, 10, Match(nw_proto=17),
                [SetFieldAction("reg1", 100), GotoTable(1)])
    of.add_flow(0, 10, Match(nw_proto=6),
                [SetFieldAction("reg1", 200), GotoTable(1)])
    of.add_flow(1, 10, Match(reg1=100), [OutputAction("p2")])
    of.add_flow(1, 10, Match(reg1=200), [])  # TCP dropped
    vs.dpif_netdev.process_batch([udp_pkt()], p1.dp_port_no, ctx, emc)
    vs.dpif_netdev.process_batch([tcp_pkt()], p1.dp_port_no, ctx, emc)
    assert len(a2.transmitted) == 1  # only the UDP packet


def test_regs_frozen_across_recirculation(world):
    """ct(table=N) freezes registers; the resume pass must see them."""
    vs, of, (p1, a1), (p2, a2), ctx, emc = world
    of.add_flow(0, 10, Match(),
                [SetFieldAction("reg2", 42),
                 CtAction(zone=1, commit=True, table=3)])
    of.add_flow(3, 10, Match(reg2=42), [OutputAction("p2")])
    of.add_flow(3, 1, Match(), [])  # anything without reg2: drop
    vs.dpif_netdev.process_batch([tcp_pkt(flags=0x02)],
                                 p1.dp_port_no, ctx, emc)
    assert len(a2.transmitted) == 1


def test_different_reg_states_get_different_recirc_ids(world):
    vs, of, (p1, a1), (p2, a2), ctx, emc = world
    bridge = vs.bridge("br0")
    rid_a = vs.ofproto.alloc_recirc_id(bridge, 3, (1,) * 10)
    rid_b = vs.ofproto.alloc_recirc_id(bridge, 3, (2,) * 10)
    rid_a2 = vs.ofproto.alloc_recirc_id(bridge, 3, (1,) * 10)
    assert rid_a != rid_b
    assert rid_a == rid_a2


def test_metadata_field_works_like_a_register(world):
    vs, of, (p1, a1), (p2, a2), ctx, emc = world
    of.add_flow(0, 10, Match(),
                [SetFieldAction("metadata", 0xDEAD), GotoTable(1)])
    of.add_flow(1, 10, Match(metadata=0xDEAD), [OutputAction("p2")])
    vs.dpif_netdev.process_batch([udp_pkt()], p1.dp_port_no, ctx, emc)
    assert len(a2.transmitted) == 1
