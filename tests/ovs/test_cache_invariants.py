"""Property-based invariants of the flow caches and mask machinery.

These pin down the algebra the burst classifier leans on: masking is
idempotent and order-insensitive, a MaskSpec projection induces exactly
the ``apply_mask`` equivalence classes, an inserted flow is immediately
probe-able, the EMC never exceeds its capacity, and the version/
displacement counters that gate cross-burst replays move exactly when
the underlying structures change.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.flow import (
    EXACT_MASK,
    FlowKey,
    MaskSpec,
    N_FLOW_FIELDS,
    apply_mask,
    mask_from_fields,
)
from repro.ovs.emc import ExactMatchCache
from repro.ovs.megaflow import MegaflowCache, MegaflowEntry, union_masks

# ---------------------------------------------------------------------------
# Strategies.
# ---------------------------------------------------------------------------

field_value = st.integers(0, 0xFFFF)

keys_st = st.builds(
    FlowKey,
    in_port=st.integers(0, 3),
    eth_type=st.sampled_from([0x0800, 0x0806]),
    nw_src=field_value,
    nw_dst=field_value,
    nw_proto=st.sampled_from([6, 17]),
    tp_src=field_value,
    tp_dst=field_value,
)

#: Per-field mask bits: wildcard, exact, or a partial (prefix-ish) mask.
mask_bits = st.sampled_from([0, -1, 0xFF00, 0x00FF, 0xF0F0])

masks_st = st.lists(
    mask_bits, min_size=N_FLOW_FIELDS, max_size=N_FLOW_FIELDS
).map(tuple)


# ---------------------------------------------------------------------------
# Mask algebra.
# ---------------------------------------------------------------------------

@settings(deadline=None)
@given(key=keys_st, mask=masks_st)
def test_apply_mask_is_idempotent(key, mask):
    once = apply_mask(key, mask)
    assert apply_mask(FlowKey(*once), mask) == once


@settings(deadline=None)
@given(key=keys_st, m1=masks_st, m2=masks_st)
def test_apply_mask_is_order_insensitive(key, m1, m2):
    a = apply_mask(FlowKey(*apply_mask(key, m1)), m2)
    b = apply_mask(FlowKey(*apply_mask(key, m2)), m1)
    assert a == b


@settings(deadline=None)
@given(k1=keys_st, k2=keys_st, mask=masks_st)
def test_maskspec_projection_matches_apply_mask_classes(k1, k2, mask):
    """project() collides exactly when apply_mask collides — the property
    that lets subtables key on projections."""
    spec = MaskSpec(mask)
    assert ((spec.project(k1) == spec.project(k2))
            == (apply_mask(k1, mask) == apply_mask(k2, mask)))


@settings(deadline=None)
@given(key=keys_st, masks=st.lists(masks_st, min_size=1, max_size=4))
def test_union_mask_is_at_least_as_specific(key, masks):
    union = union_masks(list(masks))
    for mask in masks:
        # Any field a component mask examines, the union examines too:
        # masking with the union preserves every component's projection.
        assert apply_mask(FlowKey(*apply_mask(key, union)), mask) \
            == apply_mask(key, mask)


# ---------------------------------------------------------------------------
# EMC invariants.
# ---------------------------------------------------------------------------

@settings(deadline=None)
@given(keys=st.lists(keys_st, min_size=1, max_size=64, unique=True))
def test_emc_insert_then_probe_hits(keys):
    emc = ExactMatchCache(n_entries=8)
    for i, key in enumerate(keys):
        emc.insert(key, f"entry{i}")
        assert emc.probe(key) == f"entry{i}"


@settings(deadline=None)
@given(keys=st.lists(keys_st, min_size=1, max_size=128, unique=True))
def test_emc_occupancy_never_exceeds_capacity(keys):
    emc = ExactMatchCache(n_entries=8)
    for key in keys:
        emc.insert(key, "v")
        live = sum(1 for s in emc._slots if s is not None)
        assert emc.occupancy == live <= emc.n_entries


@settings(deadline=None)
@given(keys=st.lists(keys_st, min_size=1, max_size=64, unique=True))
def test_emc_displacements_monotonic_and_cover_all_mutations(keys):
    """Any insert/evict/flush that could change a probe outcome bumps
    ``displacements`` — the validity tag of the datapath flow cache."""
    emc = ExactMatchCache(n_entries=8)
    last = emc.displacements
    for key in keys:
        snapshot = list(emc._slots)
        emc.insert(key, object())
        if emc._slots != snapshot:
            assert emc.displacements > last
        last = emc.displacements
    for key in keys:
        snapshot = list(emc._slots)
        emc.evict(key)
        if emc._slots != snapshot:
            assert emc.displacements > last
        last = emc.displacements
    emc.flush()
    assert emc.displacements > last


@settings(deadline=None)
@given(keys=st.lists(keys_st, min_size=2, max_size=32, unique=True))
def test_emc_reinsert_same_entry_is_tag_stable(keys):
    """Re-inserting the identical (key, entry) pair into its own slot
    must NOT bump displacements: the batched path re-inserts on every
    megaflow hit and would otherwise self-invalidate its flow cache."""
    emc = ExactMatchCache(n_entries=8)
    entry = object()
    emc.insert(keys[0], entry)
    tag = emc.displacements
    emc.insert(keys[0], entry)
    assert emc.displacements == tag


# ---------------------------------------------------------------------------
# Megaflow invariants.
# ---------------------------------------------------------------------------

FIELD_SUBSETS = [
    mask_from_fields(eth_type=-1, nw_dst=-1),
    mask_from_fields(eth_type=-1, nw_src=-1, nw_dst=-1),
    mask_from_fields(eth_type=-1, nw_proto=-1, tp_dst=-1),
    EXACT_MASK,
]


@settings(deadline=None)
@given(
    flows=st.lists(
        st.tuples(keys_st, st.integers(0, len(FIELD_SUBSETS) - 1)),
        min_size=1, max_size=32,
    )
)
def test_megaflow_insert_then_lookup_hits(flows):
    mf = MegaflowCache()
    for key, mask_idx in flows:
        mask = FIELD_SUBSETS[mask_idx]
        inserted = mf.insert(key, mask, ("out",))
        assert isinstance(inserted, MegaflowEntry)
        found = mf.lookup_entry(key)
        # An earlier subtable may shadow it, but *some* entry with a
        # compatible masked key must hit.
        assert found is not None
        assert (apply_mask(key, found.mask)
                == apply_mask(found.key, found.mask))


@settings(deadline=None)
@given(
    flows=st.lists(
        st.tuples(keys_st, st.integers(0, len(FIELD_SUBSETS) - 1)),
        min_size=1, max_size=24,
        # Unique per (mask, masked key): keys colliding under their mask
        # share one subtable slot and would overwrite each other.
        unique_by=lambda f: (f[1], apply_mask(f[0], FIELD_SUBSETS[f[1]])),
    )
)
def test_megaflow_version_moves_exactly_on_mutation(flows):
    mf = MegaflowCache()
    v = mf.version
    for key, mask_idx in flows:
        mf.insert(key, FIELD_SUBSETS[mask_idx], ("out",))
        assert mf.version == v + 1
        v = mf.version
        mf.lookup_entry(key)
        assert mf.version == v  # lookups never bump
    for key, mask_idx in flows:
        removed = mf.remove(key, FIELD_SUBSETS[mask_idx])
        assert removed and mf.version == v + 1
        v = mf.version
    mf.flush()
    assert mf.version == v + 1


def test_megaflow_failed_insert_keeps_version():
    """A full cache rejects the insert and must not bump the version —
    cached lookup outcomes remain valid."""
    mf = MegaflowCache(max_flows=1)
    mask = FIELD_SUBSETS[0]
    mf.insert(FlowKey(nw_dst=1, eth_type=0x0800), mask, ("a",))
    v = mf.version
    rejected = mf.insert(FlowKey(nw_dst=2, eth_type=0x0800), mask, ("b",))
    assert rejected is None
    assert mf.version == v


@settings(deadline=None)
@given(key=keys_st, mask_idx=st.integers(0, len(FIELD_SUBSETS) - 1))
def test_megaflow_replay_matches_live_lookup(key, mask_idx):
    """replay_lookup must mutate hits/misses/stats exactly as the live
    lookup that produced the outcome."""
    mask = FIELD_SUBSETS[mask_idx]
    live = MegaflowCache()
    live.insert(key, mask, ("out",))
    entry, probes = live.lookup_entry_probes(key)
    hits, misses = live.hits, live.misses
    packets = entry.n_packets
    live.replay_lookup(entry, probes)
    assert (live.hits, live.misses) == (hits + 1, misses)
    assert entry.n_packets == packets + 1
