"""ovs-appctl introspection, port mirrors (ERSPAN), and XDP steering."""

import pytest

from repro.afxdp.driver import AfxdpDriver, AfxdpOptions
from repro.hosts.host import Host
from repro.kernel.netdev import NetDevice, Wire
from repro.net.addresses import MacAddress, ip_to_int
from repro.net.builder import make_tcp_packet, make_udp_packet
from repro.net.tunnel import decapsulate
from repro.ovs.appctl import OvsAppctl
from repro.ovs.emc import ExactMatchCache
from repro.ovs.match import Match
from repro.ovs.ofactions import CtAction, OutputAction
from repro.ovs.ofproto import MirrorConfig
from repro.ovs.openflow import OpenFlowConnection
from repro.ovs.pmd import PmdThread
from repro.sim.cpu import CpuCategory, ExecContext

from .conftest import mac, udp_pkt


@pytest.fixture
def world():
    host = Host("ops", n_cpus=4)
    vs = host.install_ovs("netdev")
    vs.add_bridge("br0")
    p1, a1 = vs.add_sim_port("br0", "p1")
    p2, a2 = vs.add_sim_port("br0", "p2")
    of = OpenFlowConnection(vs.bridge("br0"))
    ctx = ExecContext(host.cpu, 0, CpuCategory.USER)
    emc = ExactMatchCache()
    return host, vs, of, (p1, a1), (p2, a2), ctx, emc


class TestAppctl:
    def test_dpctl_show(self, world):
        host, vs, of, (p1, a1), (p2, a2), ctx, emc = world
        of.add_flow(0, 10, Match(in_port=p1.ofport), [OutputAction("p2")])
        vs.dpif_netdev.process_batch([udp_pkt()], p1.dp_port_no, ctx, emc)
        out = OvsAppctl(vs).dpctl_show()
        assert "port" in out and "p1" in out and "p2" in out
        assert "flows: 1" in out

    def test_dump_flows_shows_stats_and_actions(self, world):
        host, vs, of, (p1, a1), (p2, a2), ctx, emc = world
        of.add_flow(0, 10, Match(in_port=p1.ofport),
                    [CtAction(zone=9, commit=True, table=2)])
        of.add_flow(2, 1, Match(), [OutputAction("p2")])
        vs.dpif_netdev.process_batch([make_tcp_packet(
            mac(1), mac(2), "10.0.0.1", "10.0.0.2", flags=2)],
            p1.dp_port_no, ctx, emc)
        out = OvsAppctl(vs).dpctl_dump_flows()
        assert "ct(zone=9,commit)" in out
        assert "recirc(" in out
        assert "packets:" in out

    def test_dump_flows_empty(self, world):
        host, vs, _of, _p1, _p2, _ctx, _emc = world
        assert "no flows" in OvsAppctl(vs).dpctl_dump_flows()

    def test_pmd_stats(self, world):
        host, vs, of, (p1, a1), (p2, a2), ctx, emc = world
        of.add_flow(0, 10, Match(), [OutputAction("p2")])
        pmd = PmdThread(vs.dpif_netdev, host.cpu, core=1)
        pmd.add_rxq(vs.dpif_netdev.ports[p1.dp_port_no], 0)
        a1.inject([udp_pkt() for _ in range(32)])
        pmd.run_until_idle()
        out = OvsAppctl(vs).pmd_stats_show([pmd])
        assert "core 1" in out
        assert "packets processed: 32" in out

    def test_dump_conntrack(self, world):
        host, vs, of, (p1, a1), (p2, a2), ctx, emc = world
        of.add_flow(0, 10, Match(), [CtAction(zone=7, commit=True, table=2)])
        of.add_flow(2, 1, Match(), [OutputAction("p2")])
        vs.dpif_netdev.process_batch([make_tcp_packet(
            mac(1), mac(2), "10.0.0.1", "10.0.0.2", flags=2)],
            p1.dp_port_no, ctx, emc)
        out = OvsAppctl(vs).dpctl_dump_conntrack()
        assert "tcp,orig=(10.0.0.1:" in out
        assert "zone=7" in out

    def test_list_bridges(self, world):
        host, vs, of, _p1, _p2, _ctx, _emc = world
        of.add_flow(0, 1, Match(), [])
        out = OvsAppctl(vs).ofproto_list_bridges()
        assert "br0" in out and "ports" in out

    def test_appctl_on_kernel_datapath(self):
        host = Host("k", n_cpus=2)
        vs = host.install_ovs("system")
        vs.add_bridge("br0")
        dev = NetDevice("p1", mac(1))
        host.kernel.init_ns.register(dev)
        dev.set_up()
        vs.add_system_port("br0", dev)
        out = OvsAppctl(vs).dpctl_show()
        assert "system@" in out
        assert "p1" in out


class TestMirrors:
    def test_span_mirror_copies_selected_traffic(self, world):
        host, vs, of, (p1, a1), (p2, a2), ctx, emc = world
        span, span_adapter = vs.add_sim_port("br0", "span0")
        vs.bridge("br0").mirrors.append(
            MirrorConfig("m0", output_port="span0",
                         select_src_ports=("p1",)))
        of.add_flow(0, 10, Match(in_port=p1.ofport), [OutputAction("p2")])
        of.add_flow(0, 10, Match(in_port=p2.ofport), [OutputAction("p1")])
        pkt = udp_pkt()
        vs.dpif_netdev.process_batch([pkt], p1.dp_port_no, ctx, emc)
        assert len(a2.take_transmitted()) == 1
        mirrored = span_adapter.take_transmitted()
        assert len(mirrored) == 1
        assert mirrored[0].data == pkt.data
        # Traffic from p2 is not selected.
        vs.dpif_netdev.process_batch([udp_pkt()], p2.dp_port_no, ctx, emc)
        assert span_adapter.take_transmitted() == []

    def test_dst_selected_mirror(self, world):
        host, vs, of, (p1, a1), (p2, a2), ctx, emc = world
        _span, span_adapter = vs.add_sim_port("br0", "span0")
        vs.bridge("br0").mirrors.append(
            MirrorConfig("m0", output_port="span0",
                         select_dst_ports=("p2",)))
        of.add_flow(0, 10, Match(in_port=p1.ofport), [OutputAction("p2")])
        vs.dpif_netdev.process_batch([udp_pkt()], p1.dp_port_no, ctx, emc)
        assert len(span_adapter.take_transmitted()) == 1

    def test_erspan_mirror_encapsulates(self, world):
        """The ERSPAN case study as a working feature: mirror to an
        ERSPAN tunnel port, get GRE/ERSPAN-encapsulated copies."""
        host, vs, of, (p1, a1), (p2, a2), ctx, emc = world
        nic = host.add_nic("uplink0")
        host.kernel.init_ns.add_address("uplink0", "192.168.1.1", 24)
        host.kernel.init_ns.neighbors.update(
            ip_to_int("192.168.1.9"), mac(99), nic.ifindex, permanent=True)
        up_port, up_adapter = vs.add_sim_port("br0", "up0")
        vs.dpif_netdev.ports[up_port.dp_port_no].device = nic
        vs.add_tunnel_port("br0", "erspan0", "erspan", "192.168.1.9",
                           key=100)
        vs.bridge("br0").mirrors.append(
            MirrorConfig("analyzer", output_port="erspan0",
                         select_src_ports=("p1",)))
        of.add_flow(0, 10, Match(in_port=p1.ofport), [OutputAction("p2")])
        pkt = udp_pkt()
        vs.dpif_netdev.process_batch([pkt], p1.dp_port_no, ctx, emc)
        [outer] = up_adapter.take_transmitted()
        ttype, session, _src, dst, inner = decapsulate(outer.data)
        assert ttype == "erspan"
        assert session == 100
        assert dst == ip_to_int("192.168.1.9")
        assert inner == pkt.data


class TestMgmtSteering:
    def _nic(self):
        nic_owner = Host("steer", n_cpus=2)
        nic = nic_owner.add_nic("ens1")
        peer = NetDevice("peer", MacAddress.local(0x9999))
        peer.set_up()
        peer.set_rx_handler(lambda pkt, ctx: None)
        Wire(nic, peer)
        return nic_owner, nic

    def test_mgmt_tcp_reaches_kernel_stack(self):
        host, nic = self._nic()
        host.kernel.init_ns.stack.attach(nic)
        host.kernel.init_ns.add_address("ens1", "10.0.0.1", 24)
        driver = AfxdpDriver(nic, AfxdpOptions(
            mgmt_steering_ports=(22, 6653)))
        driver.setup()
        # After the driver attaches, stack attachment was replaced; the
        # XDP PASS path re-delivers into whatever the rx_handler is.
        host.kernel.init_ns.stack.attach(nic)
        ssh = make_tcp_packet(MacAddress.local(1), nic.mac,
                              "10.0.0.9", "10.0.0.1", 1234, 22, flags=0x02)
        nic.host_receive(ssh)
        host.kernel.service_nic(nic)
        assert host.kernel.init_ns.stack.counters.get("TcpInSegs", 0) == 1
        # Ordinary datapath traffic still lands in the XSK.
        udp = make_udp_packet(MacAddress.local(1), nic.mac,
                              "10.0.0.9", "10.0.0.1", 5, 5)
        nic.host_receive(udp)
        host.kernel.service_nic(nic)
        assert driver.sockets[0].rx_delivered == 1
