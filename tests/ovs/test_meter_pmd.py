import pytest

from repro.kernel.kernel import Kernel
from repro.ovs.emc import ExactMatchCache
from repro.ovs.match import Match
from repro.ovs.meter import MeterTable
from repro.ovs.ofactions import MeterAction, OutputAction
from repro.ovs.openflow import OpenFlowConnection
from repro.ovs.pmd import PmdThread, assign_rxqs_round_robin
from repro.ovs.vswitchd import VSwitchd
from repro.sim.cpu import CpuCategory, CpuModel, ExecContext

from .conftest import udp_pkt


class TestMeter:
    def test_policing_drops_over_rate(self):
        table = MeterTable()
        table.add(1, rate_kbps=8, burst_kb=1)  # 1 kB/s, 1 kB burst
        now = 0
        passed = sum(
            1 for _ in range(10) if table.admit(1, 500, now)
        )
        # 1 kB of burst admits 2 x 500B, then drops.
        assert passed == 2

    def test_tokens_refill_over_time(self):
        table = MeterTable()
        meter = table.add(1, rate_kbps=8_000, burst_kb=1)  # 1 MB/s
        assert table.admit(1, 1000, 0)
        assert not table.admit(1, 1000, 1)  # bucket empty
        # After 1 ms at 1 MB/s, ~1000 bytes of tokens are back.
        assert table.admit(1, 1000, 1_000_000)
        assert meter.n_dropped == 1

    def test_unknown_meter_passes(self):
        assert MeterTable().admit(99, 1000, 0)

    def test_duplicate_meter_rejected(self):
        table = MeterTable()
        table.add(1, 100)
        with pytest.raises(ValueError):
            table.add(1, 100)

    def test_meter_action_in_pipeline(self):
        cpu = CpuModel(2)
        kernel = Kernel(cpu)
        vs = VSwitchd(kernel, datapath_type="netdev")
        vs.add_bridge("br0")
        p1, a1 = vs.add_sim_port("br0", "p1")
        p2, a2 = vs.add_sim_port("br0", "p2")
        vs.dpif_netdev.meters.add(1, rate_kbps=8, burst_kb=1)
        of = OpenFlowConnection(vs.bridge("br0"))
        of.add_flow(0, 10, Match(), [MeterAction(1), OutputAction("p2")])
        ctx = ExecContext(cpu, 0, CpuCategory.USER)
        emc = ExactMatchCache()
        for _ in range(10):
            vs.dpif_netdev.process_batch([udp_pkt(frame_len=564)],
                                         p1.dp_port_no, ctx, emc)
        # Policing, not shaping: the overflow is dropped, not queued
        # (§6's "not fully equivalent" QoS caveat).
        assert 0 < len(a2.transmitted) < 10
        assert vs.dpif_netdev.stats.dropped == 10 - len(a2.transmitted)


class TestPmd:
    def _world(self):
        cpu = CpuModel(4)
        kernel = Kernel(cpu)
        vs = VSwitchd(kernel, datapath_type="netdev")
        vs.add_bridge("br0")
        p1, a1 = vs.add_sim_port("br0", "p1")
        p2, a2 = vs.add_sim_port("br0", "p2")
        of = OpenFlowConnection(vs.bridge("br0"))
        of.add_flow(0, 10, Match(), [OutputAction("p2")])
        return cpu, vs, (p1, a1), (p2, a2)

    def test_pmd_polls_and_forwards(self):
        cpu, vs, (p1, a1), (p2, a2) = self._world()
        pmd = PmdThread(vs.dpif_netdev, cpu, core=2)
        pmd.add_rxq(vs.dpif_netdev.ports[p1.dp_port_no], 0)
        a1.inject([udp_pkt() for _ in range(100)])
        total = pmd.run_until_idle()
        assert total == 100
        assert len(a2.transmitted) == 100
        assert pmd.packets_processed == 100

    def test_pmd_charges_its_own_core(self):
        cpu, vs, (p1, a1), (p2, a2) = self._world()
        pmd = PmdThread(vs.dpif_netdev, cpu, core=3)
        pmd.add_rxq(vs.dpif_netdev.ports[p1.dp_port_no], 0)
        a1.inject([udp_pkt()])
        pmd.run_iteration()
        assert cpu.busy_ns(cpu=3) > 0
        assert cpu.busy_ns(cpu=0) == 0

    def test_main_thread_mode_slower_per_packet(self):
        """O1 in miniature: the shared-thread mode pays poll syscalls."""
        def run(main_mode):
            cpu, vs, (p1, a1), (p2, a2) = self._world()
            pmd = PmdThread(vs.dpif_netdev, cpu, core=1,
                            main_thread_mode=main_mode, batch_size=4)
            pmd.add_rxq(vs.dpif_netdev.ports[p1.dp_port_no], 0)
            a1.inject([udp_pkt() for _ in range(64)])
            pmd.run_until_idle()
            return cpu.busy_ns()

        assert run(True) > 1.5 * run(False)

    def test_round_robin_assignment(self):
        cpu, vs, (p1, a1), (p2, a2) = self._world()
        threads = [PmdThread(vs.dpif_netdev, cpu, core=i) for i in range(3)]
        port1 = vs.dpif_netdev.ports[p1.dp_port_no]
        rxqs = [(port1, q) for q in range(7)]
        assign_rxqs_round_robin(threads, rxqs)
        assert [len(t.rxqs) for t in threads] == [3, 2, 2]
        with pytest.raises(ValueError):
            assign_rxqs_round_robin([], rxqs)

    def test_per_pmd_emc_is_private(self):
        cpu, vs, (p1, a1), (p2, a2) = self._world()
        t1 = PmdThread(vs.dpif_netdev, cpu, core=0)
        t2 = PmdThread(vs.dpif_netdev, cpu, core=1)
        assert t1.emc is not t2.emc
