"""Invalidation: every channel that retires a megaflow decision must
retire its compiled closure too.

The dp-JIT caches one closure per installed megaflow, honored only while
``entry.jit[0] is entry.actions``.  These tests exercise each mutation
channel — flow-mod removal, the revalidator sweep (both decision-change
and idle expiry), flush, eviction under flow-limit pressure, and an
in-place action rebind — and prove that (a) the *old* closure never
dispatches again (spy-wrapped), (b) the invalidation counters move, and
(c) post-mutation forwarding matches the interpreter byte-for-byte.
"""

from repro.net.addresses import MacAddress
from repro.net.builder import make_udp_packet
from repro.net.flow import mask_from_fields
from repro.ovs import dpjit, odp
from repro.ovs.dpif_netdev import DpifNetdev
from repro.ovs.emc import ExactMatchCache
from repro.ovs.netdevs import SimAdapter
from repro.sim import faults
from repro.sim.cpu import CpuCategory, CpuModel, ExecContext
from repro.sim.faults import FaultPlan

MASK = mask_from_fields(eth_type=-1, nw_dst=-1)


def _world(n_dsts=1, out_port_idx=0):
    dpif = DpifNetdev()
    rx = SimAdapter()
    out_a = SimAdapter()
    out_b = SimAdapter()
    p_rx = dpif.add_port("rx", rx)
    p_a = dpif.add_port("a", out_a)
    p_b = dpif.add_port("b", out_b)
    ports = (p_a.port_no, p_b.port_no)
    state = {"out": ports[out_port_idx]}

    def upcall(key, ctx):
        return ((odp.Output(state["out"]),), MASK)

    dpif.upcall_fn = upcall
    cpu = CpuModel(1)
    ctx = ExecContext(cpu, 0, CpuCategory.USER)
    emc = ExactMatchCache(n_entries=8)
    return dpif, ctx, emc, p_rx, (out_a, out_b), state, ports


def _send(dpif, ctx, emc, p_rx, dst="10.9.0.1", n=4):
    pkts = [
        make_udp_packet(MacAddress.local(1), MacAddress.local(2),
                        "192.168.9.1", dst, 1000 + i, 2000)
        for i in range(n)
    ]
    dpif.process_batch(pkts, p_rx.port_no, ctx, emc)


def _compiled_entries(dpif):
    return [e for e in dpif.megaflows.entries()
            if e.jit is not None and e.jit[1] is not None]


def _spy(entry):
    """Wrap the entry's bound closure; returns the call log."""
    calls = []
    real = entry.jit[1]

    def spy(*args):
        calls.append(1)
        return real(*args)

    entry.jit = (entry.jit[0], spy, entry.jit[2])
    return calls


def test_flow_mod_removal_retires_the_closure():
    dpjit.reset_stats()
    dpif, ctx, emc, p_rx, outs, _state, _ports = _world()
    _send(dpif, ctx, emc, p_rx)
    (entry,) = _compiled_entries(dpif)
    calls = _spy(entry)
    invalidated = dpjit.STATS.invalidated
    # The flow-mod path: ofproto deletes the rule, the datapath flow
    # referencing it is removed.
    assert dpif.megaflows.remove(entry.key, entry.mask)
    assert dpjit.STATS.invalidated == invalidated + 1
    # Same traffic reinstalls a *fresh* entry with a fresh closure; the
    # retired closure never runs again.
    emc.flush()
    _send(dpif, ctx, emc, p_rx)
    assert calls == []
    (fresh,) = _compiled_entries(dpif)
    assert fresh is not entry and fresh.jit[1] is not entry.jit[1]
    assert sum(len(p.data) for o in outs for p in o.take_transmitted()) > 0


def test_revalidator_decision_change_retires_the_closure():
    dpjit.reset_stats()
    dpif, ctx, emc, p_rx, outs, state, ports = _world()
    _send(dpif, ctx, emc, p_rx)
    (entry,) = _compiled_entries(dpif)
    calls = _spy(entry)
    outs[0].take_transmitted()
    # The controller repoints the rule at port b; the revalidator's
    # re-translation notices and drops the stale megaflow.
    state["out"] = ports[1]
    invalidated = dpjit.STATS.invalidated
    result = dpif.revalidate(emcs=[emc])
    assert result["removed_changed"] == 1
    assert dpjit.STATS.invalidated == invalidated + 1
    _send(dpif, ctx, emc, p_rx)
    assert calls == []
    # Traffic now leaves via port b only, compiled and interpreted alike.
    assert outs[0].take_transmitted() == []
    assert len(outs[1].take_transmitted()) == 4
    with dpjit.disabled():
        _send(dpif, ctx, emc, p_rx)
    assert len(outs[1].take_transmitted()) == 4


def test_revalidator_idle_expiry_retires_the_closure():
    dpjit.reset_stats()
    dpif, ctx, emc, p_rx, _outs, _state, _ports = _world()
    _send(dpif, ctx, emc, p_rx)
    (entry,) = _compiled_entries(dpif)
    calls = _spy(entry)
    invalidated = dpjit.STATS.invalidated
    # Advance virtual time past the idle budget so the sweep expires it.
    dpif.now_ns_fn = lambda: 60_000_000_000
    result = dpif.revalidate(max_idle_ns=1_000_000_000, emcs=[emc])
    assert result["removed_idle"] == 1
    assert dpjit.STATS.invalidated == invalidated + 1
    assert _compiled_entries(dpif) == []
    _send(dpif, ctx, emc, p_rx)
    assert calls == []


def test_flush_retires_every_closure():
    dpjit.reset_stats()
    dpif, ctx, emc, p_rx, _outs, _state, _ports = _world()
    for i in range(1, 4):
        _send(dpif, ctx, emc, p_rx, dst=f"10.9.{i}.1")
    live = _compiled_entries(dpif)
    assert len(live) >= 1
    spies = [_spy(e) for e in live]
    invalidated = dpjit.STATS.invalidated
    version = dpif.megaflows.version
    dpif.flow_flush()
    assert dpif.megaflows.version > version
    assert dpjit.STATS.invalidated == invalidated + len(live)
    emc.flush()
    for i in range(1, 4):
        _send(dpif, ctx, emc, p_rx, dst=f"10.9.{i}.1")
    assert all(calls == [] for calls in spies)


def test_flow_limit_transient_entries_pin_to_the_interpreter():
    """Over the flow limit the upcall executes through a transient entry;
    compiling per packet would pay translation for every packet, so the
    transient is pinned (``jit = (actions, None, None)``) and the
    compile counter must not grow with traffic volume."""
    dpjit.reset_stats()
    dpif, ctx, emc, p_rx, outs, _state, _ports = _world()
    _send(dpif, ctx, emc, p_rx, dst="10.9.0.1")
    compiled = dpjit.STATS.compiled
    with faults.injecting(FaultPlan(seed=0, flow_limit=1)):
        for i in range(2, 8):
            _send(dpif, ctx, emc, p_rx, dst=f"10.9.0.{i}", n=2)
    assert len(dpif.megaflows) == 1  # nothing installed past the limit
    assert dpjit.STATS.compiled == compiled
    # Every packet still flowed.
    assert len([p for o in outs for p in o.take_transmitted()]) == 4 + 12


def test_stale_closure_on_rebind_recompiles_at_dispatch():
    """An in-place actions rebind (no table mutation) is the one channel
    the removal hooks cannot see; the dispatch-time identity check
    ``jit[0] is entry.actions`` must catch it."""
    dpjit.reset_stats()
    dpif, ctx, emc, p_rx, outs, _state, ports = _world()
    _send(dpif, ctx, emc, p_rx)
    (entry,) = _compiled_entries(dpif)
    calls = _spy(entry)
    outs[0].take_transmitted()
    entry.actions = (odp.Output(ports[1]),)  # rebind, same installed entry
    invalidated = dpjit.STATS.invalidated
    _send(dpif, ctx, emc, p_rx)
    assert calls == []  # the stale closure never ran
    assert dpjit.STATS.invalidated == invalidated + 1
    assert outs[0].take_transmitted() == []
    assert len(outs[1].take_transmitted()) == 4
    # The recompiled closure is cached again: further traffic dispatches
    # without another invalidation.
    _send(dpif, ctx, emc, p_rx)
    assert dpjit.STATS.invalidated == invalidated + 1
    assert len(outs[1].take_transmitted()) == 4
