"""Property-based correctness of the classifier and cache hierarchy.

Two invariants the whole system rests on:

1. tuple-space search returns exactly what a brute-force highest-priority
   scan would;
2. the megaflow/EMC cache hierarchy never changes a forwarding decision —
   for any rule set and any packet, the cached datapath's actions equal a
   fresh slow-path translation.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hosts.host import Host
from repro.net.addresses import MacAddress
from repro.net.builder import make_udp_packet
from repro.net.flow import extract_flow
from repro.ovs.emc import ExactMatchCache
from repro.ovs.match import Match
from repro.ovs.ofactions import GotoTable, OutputAction, SetFieldAction
from repro.ovs.oftable import FlowTable, Rule
from repro.ovs.openflow import OpenFlowConnection
from repro.sim.cpu import CpuCategory, CpuModel, ExecContext

# ---------------------------------------------------------------------------
# 1. Classifier equivalence with a brute-force reference.
# ---------------------------------------------------------------------------

_field_strategy = st.sampled_from(
    ["nw_src", "nw_dst", "nw_proto", "tp_src", "tp_dst", "in_port"]
)


@st.composite
def _random_rule(draw, index):
    n_fields = draw(st.integers(0, 3))
    fields = {}
    for _ in range(n_fields):
        name = draw(_field_strategy)
        if name in ("nw_src", "nw_dst"):
            value = draw(st.integers(0, 3)) << 8
            mask = 0xFFFFFF00
        elif name == "in_port":
            value, mask = draw(st.integers(1, 3)), 0xFFFFFFFF
        elif name == "nw_proto":
            value, mask = draw(st.sampled_from([6, 17])), 0xFF
        else:
            value, mask = draw(st.integers(0, 3)), 0xFFFF
        fields[name] = (value, mask)
    priority = draw(st.integers(1, 5))
    return Rule(priority, Match(**fields), (OutputAction(f"p{index}"),))


@st.composite
def _rules_and_packets(draw):
    rules = [draw(_random_rule(i)) for i in range(draw(st.integers(1, 12)))]
    packets = []
    for _ in range(draw(st.integers(1, 8))):
        packets.append(dict(
            in_port=draw(st.integers(1, 3)),
            nw_src=draw(st.integers(0, 3)) << 8 | draw(st.integers(0, 1)),
            nw_dst=draw(st.integers(0, 3)) << 8,
            proto=draw(st.sampled_from([6, 17])),
            sport=draw(st.integers(0, 3)),
            dport=draw(st.integers(0, 3)),
        ))
    return rules, packets


def _brute_force(rules, key):
    best = None
    for rule in rules:
        if rule.match.matches(key) and (
            best is None or rule.priority > best.priority
        ):
            best = rule
    return best


@given(_rules_and_packets())
@settings(max_examples=60, deadline=None)
def test_tss_equals_brute_force(case):
    rules, packets = case
    table = FlowTable()
    live = []
    for rule in rules:
        replaced = table.add_rule(rule)
        if replaced is not None:
            live.remove(replaced)
        live.append(rule)
    for spec in packets:
        from repro.net.builder import make_tcp_packet

        builder = make_tcp_packet if spec["proto"] == 6 else make_udp_packet
        pkt = builder(MacAddress.local(1), MacAddress.local(2),
                      spec["nw_src"], spec["nw_dst"],
                      spec["sport"], spec["dport"])
        key = extract_flow(pkt.data, in_port=spec["in_port"])
        got = table.lookup(key)
        expected = _brute_force(live, key)
        if expected is None:
            assert got is None
        else:
            assert got is not None
            assert got.priority == expected.priority
            # Ties between equal-priority overlapping rules are arbitrary
            # in OpenFlow; only insist on the priority.


# ---------------------------------------------------------------------------
# 2. Cache hierarchy never changes the decision.
# ---------------------------------------------------------------------------

@given(_rules_and_packets(), st.booleans())
@settings(max_examples=25, deadline=None)
def test_cached_datapath_matches_slow_path(case, second_table):
    rules, packets = case
    host = Host("prop", n_cpus=2)
    vs = host.install_ovs("netdev")
    vs.add_bridge("br0")
    ports = {}
    adapters = {}
    for i in range(len(rules)):
        port, adapter = vs.add_sim_port("br0", f"p{i}")
        ports[f"p{i}"] = port
        adapters[f"p{i}"] = adapter
    src_port, _src_adapter = vs.add_sim_port("br0", "src")
    of = OpenFlowConnection(vs.bridge("br0"))
    for rule in rules:
        actions = list(rule.actions)
        if second_table:
            # Exercise multi-table translation too.
            of.add_flow(1, rule.priority, rule.match, actions)
            actions = [GotoTable(1)]
            of.add_flow(0, rule.priority, rule.match, actions)
        else:
            of.add_flow(0, rule.priority, rule.match, actions)

    ctx = ExecContext(host.cpu, 0, CpuCategory.USER)
    emc = ExactMatchCache()
    dpif = vs.dpif_netdev
    for spec in packets:
        from repro.net.builder import make_tcp_packet

        builder = make_tcp_packet if spec["proto"] == 6 else make_udp_packet
        pkt = builder(MacAddress.local(1), MacAddress.local(2),
                      spec["nw_src"], spec["nw_dst"],
                      spec["sport"], spec["dport"])
        # Send the same packet TWICE: first populates the caches, the
        # second must take the cached path to the same output.
        for _ in range(2):
            dpif.process_batch([pkt.clone()], src_port.dp_port_no, ctx, emc)
        key = extract_flow(pkt.data, in_port=src_port.dp_port_no)
        fresh = vs.ofproto.translate(key)
        expected_outputs = {
            a.port_no for a in fresh.actions
            if a.__class__.__name__ == "Output"
        }
        got_outputs = {
            name for name, adapter in adapters.items()
            if adapter.take_transmitted()
        }
        expected_names = {
            dpif.ports[p].name for p in expected_outputs if p in dpif.ports
        }
        if expected_names:
            assert got_outputs == expected_names
        else:
            assert got_outputs == set()
