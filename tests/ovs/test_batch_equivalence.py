"""Observational equivalence: batched classification vs the reference path.

The burst classifier (``_classify_execute_burst``) must be
indistinguishable from the retained per-packet reference path
(``_process_one``) in every observable: transmitted bytes, pipeline
stats, cache counters, the *exact* virtual-time floats (local time and
per-(cpu, category) busy time — float addition is order-sensitive, so
equality here proves the charge sequence itself is identical), and the
trace ledger.  Hypothesis drives random bursts through twin datapaths
with a deliberately tiny EMC so displacement churn keeps invalidating
the cross-burst flow cache.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.addresses import MacAddress
from repro.net.builder import make_udp_packet
from repro.net.flow import mask_from_fields
from repro.ovs import odp
from repro.ovs.dpif_netdev import DpifNetdev
from repro.ovs.emc import ExactMatchCache
from repro.ovs.netdevs import SimAdapter
from repro.sim import trace
from repro.sim.cpu import CpuCategory, CpuModel, ExecContext

#: Destination pool: the low byte selects the upcall outcome below, so
#: generated traffic exercises drop, single-output and multi-output
#: translations side by side.
DSTS = [f"10.1.0.{i}" for i in range(1, 9)]
MASK = mask_from_fields(eth_type=-1, nw_dst=-1)


def _make_world(batch_classify: bool):
    dpif = DpifNetdev(batch_classify=batch_classify)
    rx = SimAdapter()
    out_a = SimAdapter()
    out_b = SimAdapter()
    p_rx = dpif.add_port("rx", rx)
    p_a = dpif.add_port("a", out_a)
    p_b = dpif.add_port("b", out_b)

    def upcall(key, ctx):
        last = key.nw_dst & 0xFF
        if last % 5 == 0:
            return None  # translation failure -> drop
        if last % 3 == 0:
            # Two outputs: forces the generic _execute path (no
            # single_out shortcut).
            return ((odp.Output(p_a.port_no), odp.Output(p_b.port_no)),
                    MASK)
        if last % 2 == 0:
            return ((odp.Output(p_b.port_no),), MASK)
        return ((odp.Output(p_a.port_no),), MASK)

    dpif.upcall_fn = upcall
    cpu = CpuModel(2)
    ctx = ExecContext(cpu, 0, CpuCategory.USER)
    # 4 slots: with up to 8 live flows the EMC constantly displaces,
    # exercising the stale-tag paths of the flow cache.
    emc = ExactMatchCache(n_entries=4)
    return dpif, ctx, cpu, emc, p_rx, (out_a, out_b)


def _packets(burst):
    return [
        make_udp_packet(
            MacAddress.local(1), MacAddress.local(2),
            "192.168.7.1", DSTS[d], 1000 + s, 2000,
        )
        for d, s in burst
    ]


def _observe(bursts, batch_classify: bool):
    dpif, ctx, cpu, emc, p_rx, outs = _make_world(batch_classify)
    with trace.recording() as rec:
        for burst in bursts:
            dpif.process_batch(_packets(burst), p_rx.port_no, ctx, emc)
    s = dpif.stats
    return {
        "tx": tuple(
            tuple(p.data for p in o.take_transmitted()) for o in outs
        ),
        "local_time_ns": ctx.local_time_ns,
        "busy": tuple(
            cpu.busy_ns(cpu=c, category=cat)
            for c in range(cpu.n_cpus) for cat in CpuCategory
        ),
        "stats": (s.packets, s.passes, s.emc_hits, s.megaflow_hits,
                  s.upcalls, s.failed_upcalls, s.dropped),
        "emc": (emc.hits, emc.misses, emc.insertions, emc.occupancy),
        "dpcls": (dpif.megaflows.hits, dpif.megaflows.misses,
                  len(dpif.megaflows), dpif.megaflows.n_masks),
        "ledger": rec.ledger(),
        "cpu_charged_ns": rec.cpu_charged_ns,
    }


burst_st = st.lists(
    st.tuples(st.integers(0, len(DSTS) - 1), st.integers(0, 7)),
    min_size=1, max_size=16,
)
bursts_st = st.lists(burst_st, min_size=1, max_size=10)


@settings(deadline=None, max_examples=50)
@given(bursts=bursts_st)
def test_batched_path_is_observationally_equivalent(bursts):
    ref = _observe(bursts, batch_classify=False)
    bat = _observe(bursts, batch_classify=True)
    assert bat == ref


@settings(deadline=None, max_examples=25)
@given(bursts=bursts_st)
def test_batched_path_is_deterministic(bursts):
    assert (_observe(bursts, batch_classify=True)
            == _observe(bursts, batch_classify=True))


def test_repeated_identical_packets_share_one_extraction():
    """Same-shape packets in one burst classify via the per-burst memo,
    and later bursts hit the cross-burst flow cache — while still being
    charged per packet (stats count every pass)."""
    bursts = [[(1, 0)] * 8, [(1, 0)] * 8]
    ref = _observe(bursts, batch_classify=False)
    bat = _observe(bursts, batch_classify=True)
    assert bat == ref
    assert bat["stats"][0] == 16


def test_single_and_multi_output_actions_agree():
    # dst index 2 -> low byte 3 % 3 == 0 -> two outputs; index 0 -> one.
    bursts = [[(0, 0), (2, 0), (0, 1), (2, 1)], [(2, 0), (0, 0)]]
    assert (_observe(bursts, batch_classify=False)
            == _observe(bursts, batch_classify=True))


def test_failed_upcalls_drop_identically():
    # dst index 4 -> low byte 5 -> upcall returns None.
    bursts = [[(4, 0), (4, 1), (0, 0)]]
    ref = _observe(bursts, batch_classify=False)
    bat = _observe(bursts, batch_classify=True)
    assert bat == ref
    assert bat["stats"][6] == 2  # dropped
