"""End-to-end tests of the userspace datapath (Figure 7b's structure)."""

import pytest

from repro.kernel.conntrack import CT_ESTABLISHED, CT_NEW
from repro.kernel.kernel import Kernel
from repro.net.addresses import ip_to_int
from repro.ovs.match import Match
from repro.ovs.ofactions import (
    CtAction,
    GotoTable,
    OutputAction,
    SetFieldAction,
)
from repro.ovs.openflow import OpenFlowConnection
from repro.ovs.emc import ExactMatchCache
from repro.ovs.vswitchd import VSwitchd
from repro.sim.cpu import CpuCategory, CpuModel, ExecContext

from .conftest import mac, tcp_pkt, udp_pkt


@pytest.fixture
def world():
    cpu = CpuModel(8)
    kernel = Kernel(cpu)
    vs = VSwitchd(kernel, datapath_type="netdev")
    vs.add_bridge("br0")
    p1, a1 = vs.add_sim_port("br0", "p1")
    p2, a2 = vs.add_sim_port("br0", "p2")
    ctx = ExecContext(cpu, 1, CpuCategory.USER)
    emc = ExactMatchCache()
    of = OpenFlowConnection(vs.bridge("br0"))
    return vs, of, (p1, a1), (p2, a2), ctx, emc, cpu


def _process(vs, adapter, port, pkts, ctx, emc):
    vs.dpif_netdev.process_batch(list(pkts), port.dp_port_no, ctx, emc)


def test_simple_forwarding(world):
    vs, of, (p1, a1), (p2, a2), ctx, emc, _cpu = world
    of.add_flow(0, 10, Match(in_port=p1.ofport), [OutputAction("p2")])
    _process(vs, a1, p1, [udp_pkt()], ctx, emc)
    assert len(a2.transmitted) == 1


def test_table_miss_drops(world):
    vs, of, (p1, a1), (p2, a2), ctx, emc, _cpu = world
    _process(vs, a1, p1, [udp_pkt()], ctx, emc)
    assert a2.transmitted == []
    assert vs.dpif_netdev.stats.dropped == 1


def test_cache_hierarchy(world):
    """First packet upcalls; second hits EMC; a same-megaflow different
    5-tuple hits the megaflow cache."""
    vs, of, (p1, a1), (p2, a2), ctx, emc, _cpu = world
    of.add_flow(0, 10, Match(nw_dst=ip_to_int("10.0.0.2")),
                [OutputAction("p2")])
    _process(vs, a1, p1, [udp_pkt()], ctx, emc)
    stats = vs.dpif_netdev.stats
    assert stats.upcalls == 1
    _process(vs, a1, p1, [udp_pkt()], ctx, emc)
    assert stats.emc_hits == 1
    assert stats.upcalls == 1
    # New source port: EMC miss (exact key differs) but megaflow hit,
    # because the rule only examined nw_dst (+ always-on fields).
    _process(vs, a1, p1, [udp_pkt(sport=4321)], ctx, emc)
    assert stats.megaflow_hits == 1
    assert stats.upcalls == 1
    assert len(a2.transmitted) == 3


def test_megaflow_mask_respects_probed_fields(world):
    """A rule that matched on tp_dst must unwildcard tp_dst in the
    megaflow: a different tp_dst misses and re-upcalls."""
    vs, of, (p1, a1), (p2, a2), ctx, emc, _cpu = world
    of.add_flow(0, 10, Match(nw_proto=17, tp_dst=2000),
                [OutputAction("p2")])
    of.add_flow(0, 5, Match(), [])  # default drop
    _process(vs, a1, p1, [udp_pkt(dport=2000)], ctx, emc)
    assert vs.dpif_netdev.stats.upcalls == 1
    _process(vs, a1, p1, [udp_pkt(dport=2001)], ctx, emc)
    assert vs.dpif_netdev.stats.upcalls == 2
    assert len(a2.transmitted) == 1  # second flow hit the drop rule


def test_goto_table_pipeline(world):
    vs, of, (p1, a1), (p2, a2), ctx, emc, _cpu = world
    of.add_flow(0, 10, Match(), [GotoTable(1)])
    of.add_flow(1, 10, Match(nw_proto=17), [OutputAction("p2")])
    _process(vs, a1, p1, [udp_pkt()], ctx, emc)
    assert len(a2.transmitted) == 1


def test_set_field_applied(world):
    vs, of, (p1, a1), (p2, a2), ctx, emc, _cpu = world
    new_ip = ip_to_int("192.168.9.9")
    of.add_flow(0, 10, Match(), [SetFieldAction("nw_dst", new_ip),
                                 OutputAction("p2")])
    _process(vs, a1, p1, [udp_pkt()], ctx, emc)
    assert a2.transmitted[0].data[30:34] == new_ip.to_bytes(4, "big")


def test_ct_recirculation_firewall(world):
    """The §5.1 three-pass shape on the userspace datapath."""
    vs, of, (p1, a1), (p2, a2), ctx, emc, _cpu = world
    of.add_flow(0, 10, Match(nw_proto=6),
                [CtAction(zone=5, commit=True, table=2)])
    # Second pass: allow NEW and ESTABLISHED in zone 5.
    of.add_flow(2, 10, Match(ct_state=(CT_NEW, CT_NEW), ct_zone=5),
                [OutputAction("p2")])
    of.add_flow(2, 10,
                Match(ct_state=(CT_ESTABLISHED, CT_ESTABLISHED), ct_zone=5),
                [OutputAction("p2")])
    syn = tcp_pkt(flags=0x02)
    _process(vs, a1, p1, [syn], ctx, emc)
    assert len(a2.transmitted) == 1
    assert len(vs.dpif_netdev.conntrack) == 1
    # Each packet took two datapath passes.
    assert vs.dpif_netdev.stats.passes == 2
    # Established traffic flows too.
    ack = tcp_pkt(flags=0x10)
    _process(vs, a1, p1, [ack], ctx, emc)
    assert len(a2.transmitted) == 2


def test_ct_passes_hit_emc_in_steady_state(world):
    vs, of, (p1, a1), (p2, a2), ctx, emc, _cpu = world
    of.add_flow(0, 10, Match(nw_proto=6),
                [CtAction(zone=5, commit=True, table=2)])
    of.add_flow(2, 10,
                Match(ct_state=(CT_ESTABLISHED, CT_ESTABLISHED), ct_zone=5),
                [OutputAction("p2")])
    of.add_flow(2, 5, Match(), [OutputAction("p2")])
    syn = tcp_pkt(flags=0x02)
    _process(vs, a1, p1, [syn], ctx, emc)
    # SYN: both passes upcalled (NEW-state megaflow installed).
    assert vs.dpif_netdev.stats.upcalls == 2
    _process(vs, a1, p1, [tcp_pkt(flags=0x10)], ctx, emc)
    # First ACK: pass 1 hits the megaflow; pass 2 upcalls once more
    # because its conntrack state is ESTABLISHED, not NEW.
    assert vs.dpif_netdev.stats.upcalls == 3
    for _ in range(4):
        _process(vs, a1, p1, [tcp_pkt(flags=0x10)], ctx, emc)
    # Steady state: no more upcalls; both passes served from EMC.
    assert vs.dpif_netdev.stats.upcalls == 3
    assert vs.dpif_netdev.stats.emc_hits >= 8


def test_restart_clears_userspace_state(world):
    vs, of, (p1, a1), (p2, a2), ctx, emc, _cpu = world
    of.add_flow(0, 10, Match(nw_proto=6),
                [CtAction(zone=1, commit=True, table=2)])
    of.add_flow(2, 1, Match(), [OutputAction("p2")])
    _process(vs, a1, p1, [tcp_pkt(flags=0x02)], ctx, emc)
    assert len(vs.dpif_netdev.conntrack) == 1
    assert len(vs.dpif_netdev.megaflows) > 0
    vs.restart()
    assert len(vs.dpif_netdev.conntrack) == 0
    assert len(vs.dpif_netdev.megaflows) == 0
    assert vs.bridge("br0").n_flows() > 0  # OpenFlow rules resync


def test_internal_port_reaches_host_stack(world):
    vs, of, (p1, a1), (p2, a2), ctx, emc, _cpu = world
    kernel = vs.kernel
    br0_tap = kernel.init_ns.device("br0")
    kernel.init_ns.stack.attach(br0_tap)
    kernel.init_ns.add_address("br0", "172.16.0.1", 24)
    server = kernel.init_ns.stack.udp_socket(ip="172.16.0.1", port=53)
    of.add_flow(0, 10, Match(), [OutputAction("LOCAL")])
    pkt = udp_pkt(src="172.16.0.9", dst="172.16.0.1", dport=53)
    # Rewrite dst MAC to the tap's so the stack accepts it.
    data = br0_tap.mac.to_bytes() + pkt.data[6:]
    _process(vs, a1, p1, [pkt.with_data(data)], ctx, emc)
    assert server.recv() is not None


def test_upcall_much_cheaper_than_kernel_upcall(world, cpu):
    from repro.sim.costs import DEFAULT_COSTS

    vs, of, (p1, a1), (p2, a2), ctx, emc, world_cpu = world
    of.add_flow(0, 10, Match(), [OutputAction("p2")])
    world_cpu.reset()
    _process(vs, a1, p1, [udp_pkt()], ctx, emc)
    # The userspace miss path exists but costs far less than the 25 us
    # netlink round trip the kernel datapath pays.
    assert world_cpu.busy_ns() < DEFAULT_COSTS.upcall_ns


def test_ovsdb_rows_created(world):
    vs, _of, (p1, _a1), (_p2, _a2), _ctx, _emc, _cpu = world
    assert vs.ovsdb.find("Bridge", name="br0")
    assert vs.ovsdb.find("Interface", name="p1")
    assert vs.ovsdb.find("Port", name="p2")
