"""``appctl supervisor/show`` golden output + restart counters in
``coverage/show``."""

from repro.hosts.host import Host
from repro.ovs.appctl import OvsAppctl
from repro.ovs.match import Match
from repro.ovs.ofactions import OutputAction
from repro.ovs.openflow import OpenFlowConnection
from repro.sim import trace
from repro.sim.clock import MSEC
from repro.sim.supervisor import Supervisor


def _world():
    host = Host("show", n_cpus=4)
    vs = host.install_ovs("netdev")
    vs.add_bridge("br0")
    vs.add_sim_port("br0", "p1")
    vs.add_sim_port("br0", "p2")
    of = OpenFlowConnection(vs.bridge("br0"))
    of.add_flow(0, 10, Match(), [OutputAction("p2")])
    sup = Supervisor(host.user_ctx(3), host.clock, vs=vs)
    return host, vs, sup


def test_supervisor_show_while_up():
    host, vs, sup = _world()
    host.clock.advance(5 * MSEC)
    out = OvsAppctl(vs).supervisor_show(sup)
    assert "status: up" in out
    assert "uptime: 5.000 ms" in out
    assert "restarts: 0" in out
    assert "heartbeat: every 10 ms, miss threshold 3" in out
    assert "next backoff: 0 ms" in out
    assert "last crash cause" not in out


def test_supervisor_show_mid_recovery_names_the_pending_phase():
    host, vs, sup = _world()
    sup.crash()
    host.clock.advance_to(35 * MSEC)  # detect done, exec pending
    sup.poll()
    out = OvsAppctl(vs).supervisor_show(sup)
    assert "status: restarting" in out
    assert "recovery: phase 'exec' ends at" in out
    assert "(done: detect)" in out
    assert "last crash cause: vswitchd.crash" in out
    sup.finish()


def test_supervisor_show_after_recovery_breaks_down_the_phases():
    host, vs, sup = _world()
    sup.crash("vswitchd.crash")
    sup.finish()
    out = OvsAppctl(vs).supervisor_show(sup)
    assert "restarts: 1" in out
    assert "restart[0]: cause=vswitchd.crash" in out
    assert "downtime=" in out and "backoff=0ms" in out
    assert "ovsdb_retries=0" in out and "netlink_redumps=0" in out
    for phase in ("detect", "exec", "ovsdb", "state", "resync"):
        assert f"  {phase:8s}" in out
    # Doubled backoff is announced for the *next* crash.
    assert "next backoff: 100 ms" in out


def test_supervisor_show_without_a_supervisor():
    _host, vs, _sup = _world()
    assert OvsAppctl(vs).supervisor_show(None) == "(no supervisor attached)"


def test_coverage_show_reports_truthful_restart_counters():
    host, vs, sup = _world()
    appctl = OvsAppctl(vs)
    with trace.recording() as rec:
        sup.crash()
        sup.finish()
        sup.crash()
        sup.finish()
        out = appctl.coverage_show(rec)
    lines = {line.split()[0]: line for line in out.splitlines()[1:]}
    assert lines["supervisor.crashes"].split()[1] == "2"
    assert lines["supervisor.restarts"].split()[1] == "2"
    assert "dpif.cold_start" in lines
    assert sup.restarts == vs.restarts == 2
