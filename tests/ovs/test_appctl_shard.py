"""``appctl shard/show`` golden output (DESIGN §17).

Wall times in the report are real seconds, so the goldens construct
reports with pinned values; one test drives a real (degenerate and a
real 2-worker) run and checks the live ``shard.LAST_REPORT`` path.
"""

from repro.hosts.host import Host
from repro.ovs.appctl import OvsAppctl
from repro.sim import shard
from repro.sim.shard import HandoffStat, ShardReport, Unit, run_units


def _appctl():
    host = Host("shardshow", n_cpus=2)
    return OvsAppctl(host.install_ovs("netdev"))


def _units(n):
    return [
        Unit(key=f"u{i}", runner="tests.sim.test_shard:unit_square",
             params=dict(x=i), weight=1.0 + i)
        for i in range(n)
    ]


def test_shard_show_golden_multi_worker():
    report = ShardReport(
        n_shards=2,
        start_method="fork",
        record="profile",
        barriers=1,
        placement=[("fig9:P2P:kernel", 0, 3.0),
                   ("fig9:P2P:dpdk", 1, 1.0),
                   ("fig9:P2P:ebpf", 1, 1.5)],
        handoffs=[HandoffStat(name="ring1", from_shard=0, to_shard=1,
                              transfers=20, packets=640, peak_depth=32)],
        shard_walls={0: 0.25, 1: 0.125},
        merge_wall_s=0.002,
        payload_bytes=4096,
    )
    out = _appctl().shard_show(report)
    assert out == "\n".join([
        "shards: 2 (start method: fork)",
        "record: profile",
        "barriers: 1",
        "shard 0: 1 unit  wall 0.250s",
        "  'fig9:P2P:kernel' (w=3)",
        "shard 1: 2 units  wall 0.125s",
        "  'fig9:P2P:dpdk' (w=1)",
        "  'fig9:P2P:ebpf' (w=1.5)",
        "cross-shard handoff queues:",
        "  ring1: shard 0 -> 1  transfers:20 packets:640 peak-depth:32",
        "merge wall: 2.00 ms (4096 snapshot bytes)",
    ])


def test_shard_show_golden_degenerate_single_shard():
    report = ShardReport(
        n_shards=1,
        start_method="inline",
        degenerate=True,
        record="off",
        barriers=0,
        placement=[("port0", 0, 1.0), ("port1", 0, 2.0)],
        shard_walls={0: 0.5},
        merge_wall_s=0.0,
        payload_bytes=0,
    )
    out = _appctl().shard_show(report)
    assert out == "\n".join([
        "shards: 1 (start method: inline, degenerate: ran inline)",
        "record: off",
        "barriers: 0",
        "shard 0: 2 units  wall 0.500s",
        "  'port0' (w=1)",
        "  'port1' (w=2)",
        "merge wall: 0.00 ms (0 snapshot bytes)",
    ])


def test_shard_show_pmd_placement_rows():
    report = ShardReport(
        n_shards=2, start_method="fork", barriers=20,
        pmd_placement=[("pmd-c0", 0, 0), ("pmd-c1", 1, 1)],
        handoffs=[HandoffStat(name="ring2", from_shard=1, to_shard=0,
                              transfers=5, packets=160, peak_depth=32)],
    )
    out = _appctl().shard_show(report)
    assert "pmd placement:" in out
    assert "  pmd-c0 core 0 -> shard 0" in out
    assert "  pmd-c1 core 1 -> shard 1" in out
    assert "barriers: 20" in out
    assert "ring2: shard 1 -> 0" in out


def test_shard_show_reads_last_report_and_handles_none():
    appctl = _appctl()
    saved = shard.LAST_REPORT
    try:
        shard.LAST_REPORT = None
        assert appctl.shard_show() == "(no sharded run recorded)"
        run_units(_units(3), shards=1)
        out = appctl.shard_show()
        assert "degenerate: ran inline" in out
        assert "shard 0: 3 units" in out
        run_units(_units(3), shards=2)
        out = appctl.shard_show()
        assert out.startswith("shards: 2 (start method: ")
        assert "barriers: 1" in out
        # LPT on weights (1, 2, 3): u2 alone, u1+u0 together.
        assert "'u2' (w=3)" in out
    finally:
        shard.LAST_REPORT = saved
