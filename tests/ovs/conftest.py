import pytest

from repro.net.addresses import MacAddress
from repro.net.builder import make_tcp_packet, make_udp_packet
from repro.sim.cpu import CpuCategory, CpuModel, ExecContext


def mac(i: int) -> MacAddress:
    return MacAddress.local(i)


def udp_pkt(src="10.0.0.1", dst="10.0.0.2", sport=1000, dport=2000,
            frame_len=64):
    return make_udp_packet(mac(1), mac(2), src, dst, sport, dport,
                           frame_len=frame_len)


def tcp_pkt(src="10.0.0.1", dst="10.0.0.2", sport=1000, dport=2000,
            flags=0x10):
    return make_tcp_packet(mac(1), mac(2), src, dst, sport, dport,
                           flags=flags)


@pytest.fixture
def cpu():
    return CpuModel(8)


@pytest.fixture
def ctx(cpu):
    return ExecContext(cpu, 0, CpuCategory.USER)
