"""Differential suite: compiled megaflow closures vs the generic walk.

The dp-layer twin of the PR 5 eBPF differential suite.  Hypothesis
drives random bursts (drawn over a destination pool whose low byte
selects the upcall translation, so every compilable chain shape —
single/multi output, set-field + vlan rewrites, trunc, userspace punt,
meter admission, tunnel encapsulation, recirculation — plus drop and
failed-upcall outcomes run side by side) through twin datapaths under
random fault plans, once with the dp-JIT on and once with it off.  The
two executions must agree on *every* observable: transmitted bytes,
pipeline stats, cache counters, the exact virtual-time floats (local
time and per-(cpu, category) busy time — float addition is
order-sensitive, so equality proves the charge sequence itself), and
the trace ledger.

The suite also proves the gate has teeth: deliberately mis-compiling a
closure (a perturbed charge constant; a reordered action chain) makes
the same byte-identity comparison trip.
"""

import contextlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.addresses import MacAddress
from repro.net.builder import make_udp_packet
from repro.net.flow import MaskSpec, mask_from_fields
from repro.net.tunnel import TunnelConfig
from repro.ovs import dpjit, odp
from repro.ovs.dpif_netdev import DpifNetdev
from repro.ovs import dpif_netdev
from repro.ovs.emc import ExactMatchCache
from repro.ovs.netdevs import SimAdapter
from repro.sim import fastpath, faults, trace
from repro.sim.cpu import CpuCategory, CpuModel, ExecContext
from repro.sim.faults import FaultPlan, FaultRule

#: Low byte 1..16 selects the chain shape in the upcall below.
DSTS = [f"10.1.0.{i}" for i in range(1, 17)]
MASK = mask_from_fields(eth_type=-1, nw_dst=-1, recirc_id=-1)
TUN = TunnelConfig(
    tunnel_type="geneve",
    local_ip=0xC0A80001,
    remote_ip=0xC0A80002,
    vni=7,
    local_mac=MacAddress.local(0x90),
    remote_mac=MacAddress.local(0x91),
)

#: Fault-plan makers (plans are stateful: one fresh instance per run).
PLAN_MAKERS = [
    lambda seed: None,
    lambda seed: FaultPlan(seed=seed, emc_insert_inv_prob=2,
                           upcall_queue_cap=2),
    lambda seed: FaultPlan(seed=seed, flow_limit=3),
    lambda seed: FaultPlan(
        seed=seed,
        rules=(FaultRule(point="dp.upcall_overload", rate=0.3),),
        emc_insert_inv_prob=3,
    ),
]


def _make_world():
    dpif = DpifNetdev()
    rx = SimAdapter()
    out_a = SimAdapter()
    out_b = SimAdapter()
    p_rx = dpif.add_port("rx", rx)
    p_a = dpif.add_port("a", out_a)
    p_b = dpif.add_port("b", out_b)
    # A tiny meter bucket, never refilled (virtual now stays 0), so the
    # compiled admission branch sees both verdicts within one run.
    dpif.meters.add(1, rate_kbps=1000, burst_kb=1)

    def upcall(key, ctx):
        if key.recirc_id:
            return ((odp.Output(p_a.port_no),), MASK)
        last = key.nw_dst & 0xFF
        if last % 13 == 0:
            return None  # translation failure -> drop
        if last % 11 == 0:
            return ((), MASK)  # explicit drop (empty chain)
        if last % 7 == 0:
            return ((odp.TunnelPush(TUN, p_b.port_no),), MASK)
        if last % 5 == 0:
            return ((odp.Recirc(1),), MASK)
        if last % 4 == 0:
            return ((odp.SetField("nw_ttl", 9), odp.PushVlan(5, 1),
                     odp.Output(p_a.port_no)), MASK)
        if last % 3 == 0:
            return ((odp.Output(p_a.port_no), odp.Output(p_b.port_no)),
                    MASK)
        if last % 2 == 0:
            return ((odp.PushVlan(3, 1), odp.PopVlan(), odp.Trunc(64),
                     odp.Userspace("sample"), odp.Output(p_b.port_no)),
                    MASK)
        return ((odp.Meter(1), odp.Output(p_a.port_no)), MASK)

    dpif.upcall_fn = upcall
    cpu = CpuModel(2)
    ctx = ExecContext(cpu, 0, CpuCategory.USER)
    emc = ExactMatchCache(n_entries=4)  # constant displacement churn
    return dpif, ctx, cpu, emc, p_rx, (out_a, out_b)


def _packets(burst):
    return [
        make_udp_packet(
            MacAddress.local(1), MacAddress.local(2),
            "192.168.7.1", DSTS[d], 1000 + s, 2000,
        )
        for d, s in burst
    ]


def _observe(bursts, plan=None, dpjit_on=True, reference=False):
    dpif, ctx, cpu, emc, p_rx, outs = _make_world()
    prev_batch = dpif_netdev.BATCH_CLASSIFY
    with contextlib.ExitStack() as stack:
        if reference:
            dpif_netdev.BATCH_CLASSIFY = False
            stack.callback(
                lambda: setattr(dpif_netdev, "BATCH_CLASSIFY", prev_batch))
            stack.enter_context(fastpath.disabled())
        elif not dpjit_on:
            stack.enter_context(dpjit.disabled())
        if plan is not None:
            stack.enter_context(faults.injecting(plan))
        rec = stack.enter_context(trace.recording())
        for burst in bursts:
            dpif.process_batch(_packets(burst), p_rx.port_no, ctx, emc)
    s = dpif.stats
    return {
        "tx": tuple(
            tuple(p.data for p in o.take_transmitted()) for o in outs
        ),
        "local_time_ns": ctx.local_time_ns,
        "busy": tuple(
            cpu.busy_ns(cpu=c, category=cat)
            for c in range(cpu.n_cpus) for cat in CpuCategory
        ),
        "stats": (s.packets, s.passes, s.emc_hits, s.megaflow_hits,
                  s.upcalls, s.failed_upcalls, s.lost, s.dropped),
        "emc": (emc.hits, emc.misses, emc.insertions, emc.occupancy),
        "dpcls": (dpif.megaflows.hits, dpif.megaflows.misses,
                  len(dpif.megaflows), dpif.megaflows.n_masks),
        "ledger": rec.ledger(),
        "cpu_charged_ns": rec.cpu_charged_ns,
    }


burst_st = st.lists(
    st.tuples(st.integers(0, len(DSTS) - 1), st.integers(0, 7)),
    min_size=1, max_size=16,
)
bursts_st = st.lists(burst_st, min_size=1, max_size=8)
plan_st = st.tuples(st.integers(0, len(PLAN_MAKERS) - 1),
                    st.integers(0, 3))


@settings(deadline=None, max_examples=50)
@given(bursts=bursts_st, plan=plan_st)
def test_compiled_closures_are_observationally_equivalent(bursts, plan):
    maker, seed = PLAN_MAKERS[plan[0]], plan[1]
    on = _observe(bursts, maker(seed), dpjit_on=True)
    off = _observe(bursts, maker(seed), dpjit_on=False)
    assert on == off


@settings(deadline=None, max_examples=20)
@given(bursts=bursts_st)
def test_compiled_path_matches_full_reference_mode(bursts):
    """dp-JIT on (batched, fastpath live) vs everything stripped."""
    on = _observe(bursts, dpjit_on=True)
    ref = _observe(bursts, reference=True)
    assert on == ref


@settings(deadline=None, max_examples=20)
@given(bursts=bursts_st, plan=plan_st)
def test_compiled_path_is_deterministic(bursts, plan):
    maker, seed = PLAN_MAKERS[plan[0]], plan[1]
    assert (_observe(bursts, maker(seed), dpjit_on=True)
            == _observe(bursts, maker(seed), dpjit_on=True))


def test_every_chain_shape_compiles_and_dispatches():
    """Non-vacuousness: the suite really executes compiled closures for
    every compilable chain shape (no silent interpreter fallback)."""
    dpjit.reset_stats()
    # One burst per dst: all sixteen translations install and execute.
    bursts = [[(d, 0) for d in range(len(DSTS))]] * 2
    obs = _observe(bursts, dpjit_on=True)
    assert obs["stats"][0] == 32
    s = dpjit.STATS
    assert s.compiled >= 7, vars_of(s)
    assert s.dispatched > 0
    assert s.declined == 0, s.decline_reasons


def vars_of(s):
    return {k: getattr(s, k) for k in s.__slots__}


def test_ct_and_tunnel_pop_chains_decline_forever():
    from repro.net.flow import FlowKey

    dpjit.reset_stats()
    for actions in (((odp.Ct(zone=1, commit=True),)),
                    ((odp.TunnelPop(3),))):
        from repro.ovs.megaflow import MegaflowEntry

        entry = MegaflowEntry(actions=tuple(actions), key=FlowKey(),
                              mask=MASK)
        assert dpjit.bind(entry) is None
        # The decline is cached on the entry: a second dispatch attempt
        # does not recompile.
        declined_before = dpjit.STATS.declined
        assert entry.jit[0] is entry.actions and entry.jit[1] is None
        assert dpjit.STATS.declined == declined_before
    assert dpjit.STATS.declined == 2
    assert "ct is not locally compilable" in dpjit.STATS.decline_reasons
    assert ("tunnel_pop is not locally compilable"
            in dpjit.STATS.decline_reasons)


def test_compiled_match_is_the_subtable_test():
    """``_dp_match`` must accept exactly the keys whose MaskSpec
    projection equals the entry's — the very subtable dict test."""
    bursts = [[(d, 0) for d in range(len(DSTS))]]
    dpif, ctx, cpu, emc, p_rx, _outs = _make_world()
    for burst in bursts:
        dpif.process_batch(_packets(burst), p_rx.port_no, ctx, emc)
    checked = 0
    for entry in dpif.megaflows.entries():
        if entry.jit is None or entry.jit[2] is None:
            continue
        match = entry.jit[2].match_fn
        spec = MaskSpec(entry.mask)
        assert match(entry.key)
        want = spec.project(entry.key)
        for i, _bits in spec.fields:
            wrong = entry.key._replace(
                **{entry.key._fields[i]: entry.key[i] ^ 0x1})
            assert match(wrong) == (spec.project(wrong) == want)
            assert not match(wrong)
        checked += 1
    assert checked >= 5


# ---------------------------------------------------------------------------
# Gate-has-teeth: a seeded inequivalence must trip the byte-identity
# comparison (otherwise the equivalence harness proves nothing).
# ---------------------------------------------------------------------------
#: dst index 3 -> low byte 4 -> the SetField+PushVlan+Output chain.
TEETH_BURSTS = [[(3, 0), (3, 1)], [(3, 0)]]


def test_gate_passes_before_seeding_inequivalence():
    assert (_observe(TEETH_BURSTS, dpjit_on=True)
            == _observe(TEETH_BURSTS, dpjit_on=False))


def test_gate_trips_on_a_perturbed_charge_constant(monkeypatch):
    orig = dpjit._translate

    def perturbed(entry):
        source, glb = orig(entry)
        return source.replace(
            "costs.action_ns", "(costs.action_ns * 1.0000001)"), glb

    monkeypatch.setattr(dpjit, "_translate", perturbed)
    mutated = _observe(TEETH_BURSTS, dpjit_on=True)
    honest = _observe(TEETH_BURSTS, dpjit_on=False)
    assert mutated != honest
    assert mutated["ledger"] != honest["ledger"]
    assert mutated["local_time_ns"] != honest["local_time_ns"]


def test_gate_trips_on_a_reordered_action_chain(monkeypatch):
    from repro.ovs.megaflow import MegaflowEntry

    orig = dpjit._translate

    def reordered(entry):
        if len(entry.actions) > 1:
            twin = MegaflowEntry(actions=tuple(reversed(entry.actions)),
                                 key=entry.key, mask=entry.mask)
            return orig(twin)
        return orig(entry)

    monkeypatch.setattr(dpjit, "_translate", reordered)
    mutated = _observe(TEETH_BURSTS, dpjit_on=True)
    honest = _observe(TEETH_BURSTS, dpjit_on=False)
    assert mutated != honest
    # Output-before-rewrite transmits the unmodified frame.
    assert mutated["tx"] != honest["tx"]
