"""``appctl sflow/show`` and ``ipfix/show`` golden output."""

from repro import telemetry
from repro.hosts.host import Host
from repro.net.addresses import MacAddress
from repro.net.builder import make_udp_packet
from repro.ovs.appctl import OvsAppctl
from repro.telemetry import IpfixConfig, SflowConfig, Telemetry
from repro.telemetry.drops import DropReason


def _appctl():
    host = Host("tele", n_cpus=2)
    return OvsAppctl(host.install_ovs("netdev"))


def _pkt(sport=1000):
    return make_udp_packet(MacAddress.local(1), MacAddress.local(2),
                           "10.0.0.1", "10.0.0.2", sport, 2000,
                           frame_len=64)


def test_shows_without_a_session():
    appctl = _appctl()
    assert appctl.sflow_show() == "(no telemetry session installed)"
    assert appctl.ipfix_show() == "(no telemetry session installed)"


def test_disabled_legs_say_so():
    appctl = _appctl()
    with telemetry.monitoring(Telemetry()):
        assert appctl.sflow_show() == "sflow: disabled"
        assert appctl.ipfix_show() == "ipfix: disabled"


def test_all_zeros_render():
    appctl = _appctl()
    session = Telemetry(sflow=SflowConfig(rate=64, points=("dpif",),
                                          seed=3),
                        ipfix=IpfixConfig())
    with telemetry.monitoring(session):
        out = appctl.sflow_show()
        assert "sflow: sampling 1/64 (header 128 bytes, seed 3)" in out
        assert "dpif     observed:0 sampled:0" in out
        assert "total    observed:0 sampled:0" in out
        out = appctl.ipfix_show()
        assert ("ipfix: point dpif active-timeout 4000000 ns "
                "idle-timeout 1000000 ns") in out
        assert "cached flows: 0" in out
        assert "exported: 0 flow records (0 packets, 0 octets)" in out
        assert "exported: 0 drop records (0 packets, 0 octets)" in out
        assert "lost to collector: 0 records" in out
        assert "drop reasons: (none recorded)" in out


def test_live_session_renders_tallies():
    appctl = _appctl()
    session = Telemetry(sflow=SflowConfig(rate=1, points=("dpif",)),
                        ipfix=IpfixConfig())
    with telemetry.monitoring(session):
        for i in range(4):
            session.observe("dpif", _pkt(1000 + i), None)
        session.drop(DropReason.NIC_RX_MISSED, n=2, octets=128)
        out = appctl.sflow_show()
        assert "dpif     observed:4 sampled:4" in out
        assert "total    observed:4 sampled:4" in out
        out = appctl.ipfix_show()
        assert "cached flows: 4" in out
        assert "drop reasons:" in out
        assert "nic.rx_missed" in out
        assert "packets:2 octets:128" in out
        session.flush_all()
        out = appctl.ipfix_show()
        assert "cached flows: 0" in out
        # 4 x 60-byte frames (the 64-byte wire size minus the FCS).
        assert "exported: 4 flow records (4 packets, 240 octets)" in out
        assert "exported: 1 drop records (2 packets, 128 octets)" in out
        assert "lost to collector: 0 records" in out
