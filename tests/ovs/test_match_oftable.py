import pytest

from repro.net.addresses import ip_to_int
from repro.net.flow import extract_flow
from repro.ovs.match import Match
from repro.ovs.ofactions import OutputAction
from repro.ovs.oftable import FlowTable, Rule

from .conftest import udp_pkt


def key_of(pkt, **kwargs):
    return extract_flow(pkt.data, **kwargs)


class TestMatch:
    def test_exact_field_match(self):
        m = Match(nw_dst=ip_to_int("10.0.0.2"))
        assert m.matches(key_of(udp_pkt()))
        assert not m.matches(key_of(udp_pkt(dst="10.0.0.3")))

    def test_masked_match(self):
        m = Match(nw_dst=(ip_to_int("10.0.0.0"), 0xFFFFFF00))
        assert m.matches(key_of(udp_pkt(dst="10.0.0.77")))
        assert not m.matches(key_of(udp_pkt(dst="10.0.1.77")))

    def test_value_outside_mask_rejected(self):
        with pytest.raises(ValueError):
            Match(nw_dst=(ip_to_int("10.0.0.1"), 0xFFFFFF00))

    def test_unknown_field_rejected(self):
        with pytest.raises(KeyError):
            Match(frobnicator=1)

    def test_catchall(self):
        m = Match()
        assert m.is_catchall()
        assert m.matches(key_of(udp_pkt()))

    def test_equality_and_hash(self):
        a = Match(nw_proto=17, tp_dst=2000)
        b = Match(tp_dst=2000, nw_proto=17)
        assert a == b
        assert hash(a) == hash(b)
        assert a != Match(nw_proto=17)

    def test_repr_shows_masks(self):
        m = Match(nw_dst=(ip_to_int("10.0.0.0"), 0xFFFFFF00))
        assert "/" in repr(m)

    def test_multi_field(self):
        m = Match(nw_proto=17, tp_dst=2000, in_port=3)
        assert m.matches(key_of(udp_pkt(), in_port=3))
        assert not m.matches(key_of(udp_pkt(), in_port=4))


class TestFlowTable:
    def _rule(self, priority, match, port="p1"):
        return Rule(priority, match, (OutputAction(port),))

    def test_highest_priority_wins(self):
        t = FlowTable()
        low = self._rule(10, Match(), "low")
        high = self._rule(100, Match(nw_proto=17), "high")
        t.add_rule(low)
        t.add_rule(high)
        hit = t.lookup(key_of(udp_pkt()))
        assert hit is high

    def test_fallthrough_to_catchall(self):
        t = FlowTable()
        t.add_rule(self._rule(10, Match(), "default"))
        t.add_rule(self._rule(100, Match(nw_proto=6), "tcp-only"))
        hit = t.lookup(key_of(udp_pkt()))
        assert hit.actions[0].port == "default"

    def test_no_match_returns_none(self):
        t = FlowTable()
        t.add_rule(self._rule(10, Match(nw_proto=6), "tcp"))
        assert t.lookup(key_of(udp_pkt())) is None

    def test_same_match_same_priority_replaces(self):
        t = FlowTable()
        t.add_rule(self._rule(5, Match(nw_proto=17), "old"))
        t.add_rule(self._rule(5, Match(nw_proto=17), "new"))
        assert len(t) == 1
        assert t.lookup(key_of(udp_pkt())).actions[0].port == "new"

    def test_subtable_count_tracks_shapes(self):
        t = FlowTable()
        t.add_rule(self._rule(1, Match(nw_dst=1)))
        t.add_rule(self._rule(1, Match(nw_dst=2)))
        t.add_rule(self._rule(1, Match(nw_proto=17)))
        assert t.n_subtables == 2  # two distinct shapes

    def test_lookup_cost_scales_with_subtables(self, ctx, cpu):
        t = FlowTable()
        # 10 distinct shapes (different nw_dst masks): 10 subtables.
        for i in range(10):
            t.add_rule(self._rule(100, Match(nw_dst=(1 << i, 1 << i))))
        t.add_rule(self._rule(1, Match(), "default"))
        cpu.reset()
        # dst 0.0.0.0 misses every single-bit subtable, hits the catchall.
        t.lookup(key_of(udp_pkt(dst="0.0.0.0")), ctx)
        from repro.sim.costs import DEFAULT_COSTS

        assert cpu.busy_ns() == pytest.approx(
            11 * DEFAULT_COSTS.classifier_subtable_ns)

    def test_early_exit_when_best_cannot_be_beaten(self, ctx, cpu):
        t = FlowTable()
        t.add_rule(self._rule(100, Match(nw_proto=17), "first"))
        for i in range(5):
            t.add_rule(self._rule(10, Match(nw_dst=i + 1)))
        cpu.reset()
        hit = t.lookup(key_of(udp_pkt()), ctx)
        assert hit.actions[0].port == "first"
        from repro.sim.costs import DEFAULT_COSTS

        assert cpu.busy_ns() == pytest.approx(
            DEFAULT_COSTS.classifier_subtable_ns)

    def test_probed_masks_accumulate(self):
        t = FlowTable()
        t.add_rule(self._rule(100, Match(nw_proto=6), "tcp"))
        t.add_rule(self._rule(10, Match(), "default"))
        probed = []
        t.lookup(key_of(udp_pkt()), probed_masks=probed)
        assert len(probed) == 2

    def test_remove_rule(self):
        t = FlowTable()
        r = self._rule(10, Match(nw_proto=17))
        t.add_rule(r)
        assert t.remove_rule(r)
        assert len(t) == 0
        assert t.n_subtables == 0
        assert not t.remove_rule(r)

    def test_stats(self):
        t = FlowTable()
        t.add_rule(self._rule(10, Match()))
        t.lookup(key_of(udp_pkt()))
        t.lookup(key_of(udp_pkt()))
        assert t.n_lookups == 2
        assert t.n_matches == 2
