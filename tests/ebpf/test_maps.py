import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ebpf.maps import (
    ArrayMap,
    DevMap,
    HashMap,
    LpmTrieMap,
    MapError,
    XskMap,
)


class TestHashMap:
    def test_lookup_miss_returns_none(self):
        m = HashMap(4, 4, 16)
        assert m.lookup(b"\x00" * 4) is None

    def test_update_then_lookup(self):
        m = HashMap(4, 8, 16)
        m.update(b"abcd", b"12345678")
        assert m.lookup(b"abcd") == b"12345678"

    def test_key_value_size_enforced(self):
        m = HashMap(4, 4, 16)
        with pytest.raises(MapError):
            m.lookup(b"abc")
        with pytest.raises(MapError):
            m.update(b"abcd", b"toolongvalue")

    def test_capacity_enforced_but_overwrite_ok(self):
        m = HashMap(1, 1, 2)
        m.update(b"a", b"x")
        m.update(b"b", b"y")
        with pytest.raises(MapError):
            m.update(b"c", b"z")
        m.update(b"a", b"w")  # overwrite existing still allowed
        assert m.lookup(b"a") == b"w"

    def test_delete(self):
        m = HashMap(1, 1, 2)
        m.update(b"a", b"x")
        m.delete(b"a")
        assert m.lookup(b"a") is None
        with pytest.raises(MapError):
            m.delete(b"a")

    def test_len_and_items(self):
        m = HashMap(1, 1, 8)
        m.update(b"a", b"1")
        m.update(b"b", b"2")
        assert len(m) == 2
        assert dict(m.items()) == {b"a": b"1", b"b": b"2"}

    @given(st.dictionaries(st.binary(min_size=4, max_size=4),
                           st.binary(min_size=4, max_size=4), max_size=50))
    def test_behaves_like_dict(self, entries):
        m = HashMap(4, 4, 64)
        for k, v in entries.items():
            m.update(k, v)
        for k, v in entries.items():
            assert m.lookup(k) == v


class TestArrayMap:
    def test_slots_preexist_zeroed(self):
        m = ArrayMap(value_size=4, max_entries=4)
        assert m.lookup((2).to_bytes(4, "little")) == b"\x00" * 4

    def test_update_and_lookup(self):
        m = ArrayMap(4, 4)
        m.update((1).to_bytes(4, "little"), b"abcd")
        assert m.lookup((1).to_bytes(4, "little")) == b"abcd"

    def test_out_of_range(self):
        m = ArrayMap(4, 4)
        assert m.lookup((4).to_bytes(4, "little")) is None
        with pytest.raises(MapError):
            m.update((4).to_bytes(4, "little"), b"abcd")

    def test_delete_forbidden(self):
        m = ArrayMap(4, 4)
        with pytest.raises(MapError):
            m.delete((0).to_bytes(4, "little"))


class TestLpmTrie:
    @staticmethod
    def _key(prefix_len: int, ip: int) -> bytes:
        return prefix_len.to_bytes(4, "little") + ip.to_bytes(4, "big")

    def test_longest_prefix_wins(self):
        m = LpmTrieMap(data_size=4, value_size=1, max_entries=16)
        m.update(self._key(8, 0x0A000000), b"A")    # 10/8
        m.update(self._key(24, 0x0A000100), b"B")   # 10.0.1/24
        assert m.lookup(self._key(32, 0x0A000105)) == b"B"
        assert m.lookup(self._key(32, 0x0A050505)) == b"A"
        assert m.lookup(self._key(32, 0x0B000001)) is None

    def test_default_route(self):
        m = LpmTrieMap(4, 1, 4)
        m.update(self._key(0, 0), b"D")
        assert m.lookup(self._key(32, 0xC0A80101)) == b"D"

    def test_delete(self):
        m = LpmTrieMap(4, 1, 4)
        m.update(self._key(8, 0x0A000000), b"A")
        m.delete(self._key(8, 0x0A000000))
        assert m.lookup(self._key(32, 0x0A000001)) is None

    def test_prefix_too_long_rejected(self):
        m = LpmTrieMap(4, 1, 4)
        with pytest.raises(MapError):
            m.update(self._key(33, 0), b"A")


class TestDevMap:
    def test_set_and_get(self):
        m = DevMap(8)
        m.set_dev(3, 42)
        assert m.get_dev(3) == 42
        assert m.lookup((3).to_bytes(4, "little")) == (42).to_bytes(4, "little")

    def test_empty_slot(self):
        m = DevMap(8)
        assert m.get_dev(0) is None
        assert m.lookup((0).to_bytes(4, "little")) is None

    def test_slot_range(self):
        m = DevMap(2)
        with pytest.raises(MapError):
            m.set_dev(2, 1)

    def test_update_delete_via_bytes(self):
        m = DevMap(4)
        m.update((1).to_bytes(4, "little"), (9).to_bytes(4, "little"))
        assert m.get_dev(1) == 9
        m.delete((1).to_bytes(4, "little"))
        assert m.get_dev(1) is None

    def test_xskmap_is_devmap_shaped(self):
        m = XskMap(4)
        m.set_dev(0, 7)
        assert m.get_dev(0) == 7
        assert m.map_type == "xskmap"


def test_dimensions_must_be_positive():
    with pytest.raises(ValueError):
        HashMap(0, 4, 4)
    with pytest.raises(ValueError):
        ArrayMap(4, 0)
