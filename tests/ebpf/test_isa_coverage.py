"""Coverage of the remaining ISA operations and VM edge cases."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ebpf.isa import Reg, to_s64, to_u64
from repro.ebpf.program import ProgramBuilder
from repro.ebpf.verifier import verify
from repro.ebpf.vm import CTX_DATA, EbpfVm, VmFault

PKT = bytes(range(64))


def run(build, pkt=PKT):
    b = ProgramBuilder("isa")
    build(b)
    vm = EbpfVm(verify(b.build()))
    return vm.run(pkt)


class TestIntegerSemantics:
    @given(st.integers(-(2**63), 2**63 - 1))
    def test_u64_s64_roundtrip(self, v):
        assert to_s64(to_u64(v)) == v

    @given(st.integers(0, 2**64 - 1))
    def test_u64_idempotent(self, v):
        assert to_u64(v) == v

    def test_mod(self):
        def prog(b):
            b.mov_imm(Reg.R0, 17)
            b.mov_imm(Reg.R1, 5)
            b._alu("mod", Reg.R0, Reg.R1, 0)
            b.exit_()
        assert run(prog) == 2

    def test_mod_by_zero_is_identity(self):
        def prog(b):
            b.mov_imm(Reg.R0, 17)
            b.mov_imm(Reg.R1, 0)
            b._alu("mod", Reg.R0, Reg.R1, 0)
            b.exit_()
        assert run(prog) == 17

    def test_arsh_full_width(self):
        # The run() verdict is truncated to 32 bits by the XDP return
        # path, so arithmetic-shift sign extension is checked with an
        # in-program full-width comparison.
        b = ProgramBuilder("arsh")
        b.mov_imm(Reg.R5, -16)
        b._alu("arsh", Reg.R5, None, 2)
        b.mov_imm(Reg.R0, 0)
        b.jne_reg(Reg.R5, Reg.R6, "nonzero")  # r6 = 0
        b.exit_()
        b.label("nonzero")
        b.mov_imm(Reg.R0, 1)
        b.exit_()
        vm = EbpfVm(verify(b.build()))
        assert vm.run(PKT) == 1  # -4 != 0

    def test_neg(self):
        def prog(b):
            b.mov_imm(Reg.R0, 5)
            b._emit(__import__("repro.ebpf.isa", fromlist=["Insn"]).Insn(
                "neg", dst=0))
            b.exit_()
        assert to_s64(run(prog) | 0xFFFFFFFF00000000) == -5

    def test_be_narrows(self):
        def prog(b):
            b.mov_imm(Reg.R0, 0x12345678)
            b.be(Reg.R0, 16)
            b.exit_()
        assert run(prog) == 0x5678


class TestJumpPredicates:
    @pytest.mark.parametrize("pred,a,b,taken", [
        ("jset", 0b1010, 0b0010, True),
        ("jset", 0b1010, 0b0100, False),
        ("jsgt", -1, 1, False),   # signed: -1 < 1
        ("jsgt", 1, -1, True),
        ("jsge", -1, -1, True),
        ("jle", 3, 3, True),
        ("jlt", 3, 3, False),
    ])
    def test_predicate(self, pred, a, b, taken):
        builder = ProgramBuilder("jmp")
        builder.mov_imm(Reg.R1, a)
        builder.mov_imm(Reg.R2, b)
        builder._jmp(pred, Reg.R1, Reg.R2, 0, "yes")
        builder.mov_imm(Reg.R0, 0)
        builder.exit_()
        builder.label("yes")
        builder.mov_imm(Reg.R0, 1)
        builder.exit_()
        vm = EbpfVm(verify(builder.build()))
        assert vm.run(PKT) == (1 if taken else 0)


class TestPointerSafety:
    def test_pointer_as_scalar_faults(self):
        b = ProgramBuilder("bad")
        b.ldxw(Reg.R2, Reg.R1, CTX_DATA)
        b.mul_imm(Reg.R2, 2)  # multiplying a packet pointer
        b.mov_imm(Reg.R0, 0)
        b.exit_()
        vm = EbpfVm(verify(b.build()))
        with pytest.raises(VmFault, match="pointer"):
            vm.run(PKT)

    def test_store_through_scalar_faults(self):
        b = ProgramBuilder("bad2")
        b.mov_imm(Reg.R2, 1234)
        b.stxw(Reg.R2, Reg.R0, 0)
        b.exit_()
        vm = EbpfVm(verify(b.build()))
        with pytest.raises(VmFault, match="non-pointer"):
            vm.run(PKT)

    def test_ctx_is_readonly(self):
        b = ProgramBuilder("roctx")
        b.mov_imm(Reg.R5, 7)
        b.stxw(Reg.R1, Reg.R5, 0)
        b.exit_()
        vm = EbpfVm(verify(b.build()))
        with pytest.raises(VmFault, match="read-only"):
            vm.run(PKT)

    def test_negative_stack_underflow_faults(self):
        b = ProgramBuilder("under")
        b.mov_reg(Reg.R2, Reg.R10)
        b.add_imm(Reg.R2, -512)
        b.ldxw(Reg.R0, Reg.R2, -4)  # below the frame
        b.exit_()
        vm = EbpfVm(verify(b.build()))
        with pytest.raises(VmFault, match="out-of-bounds"):
            vm.run(PKT)
