"""Unit gates for the eBPF JIT: compilation coverage, charge-exactness,
cache invalidation, decline fallback, and the memo stale-verdict fix."""

import pytest

from repro.ebpf import jit, programs
from repro.ebpf.helpers import Helper
from repro.ebpf.isa import Insn, Reg
from repro.ebpf.maps import HashMap
from repro.ebpf.program import Program, ProgramBuilder
from repro.ebpf.verifier import verify
from repro.ebpf.vm import EbpfVm, VmFault
from repro.ebpf.xdp import XdpAction, XdpContext
from repro.sim import fastpath, trace

PKT = bytes(range(64))


def _build(build_fn, name="jit_t"):
    b = ProgramBuilder(name)
    build_fn(b)
    return verify(b.build())


class _ChargeLog:
    def __init__(self):
        self.charges = []

    def charge(self, ns, label=None):
        self.charges.append((label, ns))


def _run_both(program, pkt=PKT, **kwargs):
    """Run on interpreter and JIT; returns ((verdict, vm, charges) * 2)."""
    compiled = jit.compiled_for(program)
    assert compiled is not None, jit.stats_for(program.name).declined
    out = []
    for vm_factory in (
        lambda c: EbpfVm(program, exec_ctx=c, ktime_ns=kwargs.get("ktime", 0)),
        lambda c: jit.JitVm(compiled, exec_ctx=c,
                            ktime_ns=kwargs.get("ktime", 0)),
    ):
        log = _ChargeLog()
        vm = vm_factory(log)
        try:
            verdict = vm.run(pkt, ingress_ifindex=kwargs.get("ifindex", 0),
                             rx_queue_index=kwargs.get("queue", 0))
        except VmFault as exc:
            verdict = ("fault", str(exc))
        out.append((verdict, vm, log.charges))
    return out[0], out[1]


ALL_PROGRAMS = [
    ("drop", lambda: programs.drop_program()),
    ("pass", lambda: programs.pass_program()),
    ("parse_drop", lambda: programs.parse_drop_program()),
    ("parse_lookup_drop", lambda: programs.parse_lookup_drop_program()[0]),
    ("parse_swap_tx", lambda: programs.parse_swap_tx_program()),
    ("l2_forward", lambda: programs.l2_forward_program()[0]),
    ("xsk_redirect", lambda: programs.xsk_redirect_program()[0]),
    ("steering", lambda: programs.steering_program()[0]),
    ("container_redirect",
     lambda: programs.container_redirect_program()[0]),
    ("l4_load_balancer", lambda: programs.l4_load_balancer_program()[0]),
]


class TestCompilationCoverage:
    @pytest.mark.parametrize("name,factory", ALL_PROGRAMS)
    def test_every_library_program_compiles(self, name, factory):
        program = factory()
        compiled = jit.compiled_for(program)
        assert compiled is not None, (
            f"{name} declined: {jit.stats_for(program.name).declined}"
        )
        assert jit.stats_for(program.name).compiled
        assert "def _jit_entry" in compiled.source

    @pytest.mark.parametrize("name,factory", ALL_PROGRAMS)
    def test_library_program_equivalence(self, name, factory):
        program = factory()
        for pkt in (PKT, PKT[:14], b"", bytes(128)):
            (v1, vm1, c1), (v2, vm2, c2) = _run_both(
                program, pkt=pkt, ifindex=3, queue=1)
            assert v1 == v2
            assert vm1.pkt_bytes() == vm2.pkt_bytes()
            assert c1 == c2
            assert vm1.last_charge_ns == vm2.last_charge_ns
            assert vm1.insns_executed == vm2.insns_executed
            assert vm1.last_helper_calls == vm2.last_helper_calls
            assert vm1.redirect_target == vm2.redirect_target
            assert vm1.touched_pkt_data == vm2.touched_pkt_data


class TestChargeExactness:
    def test_trace_counters_match(self):
        program = _build(lambda b: (
            b.mov_reg(Reg.R2, Reg.R1),
            b.ldxw(Reg.R2, Reg.R1, 0),
            b.ldxb(Reg.R0, Reg.R2, 5),
            b.call(Helper.KTIME_GET_NS),
            b.exit_(),
        ))
        compiled = jit.compiled_for(program)
        ledgers = []
        counters = []
        for factory in (lambda: EbpfVm(program),
                        lambda: jit.JitVm(compiled)):
            with trace.recording() as rec:
                factory().run(PKT)
            ledgers.append(rec.ledger())
            counters.append(dict(rec.counters))
        assert counters[0] == counters[1]
        assert counters[0]["ebpf.insns_retired"] == 5
        assert counters[0]["ebpf.helper_calls"] == 1
        assert counters[0]["ebpf.runs"] == 1
        assert ledgers[0] == ledgers[1]

    def test_first_touch_charge_order_and_fault_paths(self):
        # An OOB packet load *after* a good one: the dma_first_touch
        # charge lands, the final aggregate charge does not, and the
        # fault message is the interpreter's, byte for byte.
        program = _build(lambda b: (
            b.mov_reg(Reg.R2, Reg.R1),
            b.ldxw(Reg.R2, Reg.R1, 0),
            b.ldxb(Reg.R3, Reg.R2, 0),
            b.ldxw(Reg.R4, Reg.R2, 1000),
            b.exit_(),
        ))
        (v1, vm1, c1), (v2, vm2, c2) = _run_both(program)
        assert v1 == v2
        assert isinstance(v1, tuple) and v1[0] == "fault"
        assert "out-of-bounds load pkt[1000:1004]" in v1[1]
        assert c1 == c2 == [("dma_first_touch",
                             __import__("repro.sim.costs",
                                        fromlist=["DEFAULT_COSTS"])
                             .DEFAULT_COSTS.dma_first_touch_ns)]
        # Faulted runs never retire instructions in either engine.
        assert vm1.insns_executed == vm2.insns_executed == 0

    def test_map_flush_and_versions_match(self):
        program, fib = programs.parse_lookup_drop_program()
        key = programs.l2_key(PKT[0:6])
        fib.update(key, (1).to_bytes(4, "little"))
        v_before = fib.version
        (v1, _, _), (v2, _, _) = _run_both(program)
        assert v1 == v2
        # Read-only lookups must not bump the version on either path.
        assert fib.version == v_before

    def test_prandom_stream_matches(self):
        program = _build(lambda b: (
            b.call(Helper.GET_PRANDOM_U32),
            b.mov_reg(Reg.R6, Reg.R0),
            b.call(Helper.GET_PRANDOM_U32),
            b.xor_reg(Reg.R0, Reg.R6),
            b.exit_(),
        ), name="prandom_t")
        (v1, _, _), (v2, _, _) = _run_both(program)
        assert v1 == v2


class TestCacheInvalidation:
    def test_compiled_once_and_cached(self):
        program = _build(lambda b: b.mov_imm(Reg.R0, 1).exit_())
        c1 = jit.compiled_for(program)
        c2 = jit.compiled_for(program)
        assert c1 is c2

    def test_rebinding_insns_recompiles(self):
        program = _build(lambda b: b.mov_imm(Reg.R0, 1).exit_())
        assert jit.JitVm(jit.compiled_for(program)).run(PKT) == 1
        program.insns = (Insn("mov_imm", dst=0, imm=7), Insn("exit"))
        compiled = jit.compiled_for(program)
        assert jit.JitVm(compiled).run(PKT) == 7

    def test_rebinding_a_map_recompiles(self):
        table = HashMap(key_size=1, value_size=1, max_entries=4)
        b = ProgramBuilder("map_rebind_t")
        map_id = b.declare_map(table)
        b.ld_map(Reg.R6, map_id)
        b.mov_imm(Reg.R0, 0)
        b.exit_()
        program = verify(b.build())
        c1 = jit.compiled_for(program)
        program.maps[map_id] = HashMap(key_size=1, value_size=1,
                                       max_entries=4)
        c2 = jit.compiled_for(program)
        assert c1 is not c2

    def test_program_token_changes_with_insns(self):
        program = _build(lambda b: b.mov_imm(Reg.R0, 1).exit_())
        t1 = jit.program_token(program)
        assert jit.program_token(program) == t1
        program.insns = tuple(list(program.insns))  # new tuple object
        assert jit.program_token(program) != t1


class TestDeclineFallback:
    def test_unknown_opcode_declines_and_interpreter_still_runs(self):
        # Forge a verified program with an opcode the translator does
        # not know; compiled_for must decline, and the XDP layer must
        # fall back to the interpreter (which faults -> ABORTED).
        program = Program("forged", (Insn("bogus_op"), Insn("exit")),
                          verified=True)
        assert jit.compiled_for(program) is None
        st = jit.stats_for("forged")
        assert not st.compiled
        assert "unsupported opcode" in st.declined
        ctx = XdpContext(program)
        with fastpath.disabled():
            verdict = ctx.run(PKT)
        assert verdict.action == XdpAction.ABORTED

    def test_unverified_program_never_compiles(self):
        b = ProgramBuilder("unverified_t")
        b.mov_imm(Reg.R0, 1)
        b.exit_()
        assert jit.compiled_for(b.build()) is None

    def test_disabled_context_manager(self):
        assert jit.ENABLED in (True, False)
        saved = jit.ENABLED
        with jit.disabled():
            assert not jit.ENABLED
        assert jit.ENABLED == saved

    def test_stats_count_jit_and_interp_runs(self):
        program = programs.drop_program()
        st = jit.stats_for(program.name)
        ctx = XdpContext(program)
        jit_before, interp_before = st.jit_runs, st.interp_runs
        ctx.run(PKT)  # fastpath+jit default on -> compiled run
        assert st.jit_runs == jit_before + 1
        with jit.disabled():
            XdpContext(program).run(bytes(33))  # fresh frame, no memo
        assert st.interp_runs == interp_before + 1


class TestMemoStaleVerdict:
    def test_reattached_program_is_not_replayed(self):
        """PR 2's verdict memo keyed only on frame+maps+costs; swapping
        the attached program mid-run must not replay the old verdict."""
        ctx = XdpContext(programs.drop_program())
        with jit.disabled():  # exercise the memo path specifically
            assert ctx.run(PKT).action == XdpAction.DROP
            ctx.program = programs.pass_program()
            assert ctx.run(PKT).action == XdpAction.PASS

    def test_insn_rebind_is_not_replayed(self):
        program = programs.drop_program()
        ctx = XdpContext(program)
        with jit.disabled():
            assert ctx.run(PKT).action == XdpAction.DROP
            program.insns = (Insn("mov_imm", dst=0, imm=2), Insn("exit"))
            assert ctx.run(PKT).action == XdpAction.PASS
