import pytest

from repro.ebpf.helpers import Helper
from repro.ebpf.isa import Reg
from repro.ebpf.maps import HashMap
from repro.ebpf.program import ProgramBuilder
from repro.ebpf.verifier import verify
from repro.ebpf.vm import CTX_DATA, CTX_DATA_END, CTX_INGRESS_IFINDEX, CTX_RX_QUEUE_INDEX, EbpfVm
from repro.sim.costs import DEFAULT_COSTS
from repro.sim.cpu import CpuCategory, CpuModel, ExecContext

PKT = bytes(range(64))


def run(build, pkt=PKT, **kwargs):
    """Build, verify and run a program; returns (verdict, vm)."""
    b = ProgramBuilder("t")
    build(b)
    vm = EbpfVm(verify(b.build()), **kwargs)
    return vm.run(pkt), vm


class TestAlu:
    def test_mov_and_return(self):
        verdict, _ = run(lambda b: b.mov_imm(Reg.R0, 42).exit_())
        assert verdict == 42

    def test_add_sub_mul(self):
        def prog(b):
            b.mov_imm(Reg.R1, 10)
            b.mov_imm(Reg.R2, 3)
            b.mov_reg(Reg.R0, Reg.R1)
            b.add_reg(Reg.R0, Reg.R2)   # 13
            b.mul_imm(Reg.R0, 2)        # 26
            b.sub_imm(Reg.R0, 1)        # 25
            b.exit_()
        assert run(prog)[0] == 25

    def test_div_by_zero_yields_zero(self):
        def prog(b):
            b.mov_imm(Reg.R0, 100)
            b.mov_imm(Reg.R1, 0)
            b._alu("div", Reg.R0, Reg.R1, 0)
            b.exit_()
        assert run(prog)[0] == 0

    def test_shifts_and_masks(self):
        def prog(b):
            b.mov_imm(Reg.R0, 0xFF)
            b.lsh_imm(Reg.R0, 8)        # 0xFF00
            b.rsh_imm(Reg.R0, 4)        # 0x0FF0
            b.and_imm(Reg.R0, 0xF0)     # 0xF0
            b.exit_()
        assert run(prog)[0] == 0xF0

    def test_wraparound_u64(self):
        def prog(b):
            b.mov_imm(Reg.R0, -1)       # 0xffffffffffffffff
            b.add_imm(Reg.R0, 2)        # wraps to 1
            b.exit_()
        assert run(prog)[0] & 0xFFFFFFFF == 1


class TestPacketAccess:
    def test_load_packet_bytes_network_order(self):
        def prog(b):
            b.ldxw(Reg.R2, Reg.R1, CTX_DATA)
            b.ldxh(Reg.R0, Reg.R2, 12)   # bytes 12,13 big-endian
            b.exit_()
        verdict, _ = run(prog)
        assert verdict == (PKT[12] << 8) | PKT[13]

    def test_bounds_check_pattern(self):
        def prog(b):
            b.ldxw(Reg.R2, Reg.R1, CTX_DATA)
            b.ldxw(Reg.R3, Reg.R1, CTX_DATA_END)
            b.mov_reg(Reg.R4, Reg.R2)
            b.add_imm(Reg.R4, 100)       # beyond the 64-byte packet
            b.jgt_reg(Reg.R4, Reg.R3, "short")
            b.mov_imm(Reg.R0, 1)
            b.exit_()
            b.label("short")
            b.mov_imm(Reg.R0, 2)
            b.exit_()
        assert run(prog)[0] == 2

    def test_out_of_bounds_load_aborts(self):
        from repro.ebpf.xdp import XdpAction, XdpContext

        b = ProgramBuilder("oob")
        b.ldxw(Reg.R2, Reg.R1, CTX_DATA)
        b.ldxw(Reg.R0, Reg.R2, 1000)
        b.exit_()
        verdict = XdpContext(verify(b.build())).run(PKT)
        assert verdict.action == XdpAction.ABORTED

    def test_store_rewrites_packet(self):
        def prog(b):
            b.ldxw(Reg.R2, Reg.R1, CTX_DATA)
            b.mov_imm(Reg.R5, 0xAABB)
            b.stxh(Reg.R2, Reg.R5, 0)
            b.mov_imm(Reg.R0, 3)
            b.exit_()
        verdict, vm = run(prog)
        assert vm.pkt_bytes()[:2] == b"\xaa\xbb"
        assert vm.pkt_bytes()[2:] == PKT[2:]

    def test_ctx_metadata_fields(self):
        def prog(b):
            b.ldxw(Reg.R0, Reg.R1, CTX_INGRESS_IFINDEX)
            b.ldxw(Reg.R5, Reg.R1, CTX_RX_QUEUE_INDEX)
            b.add_reg(Reg.R0, Reg.R5)
            b.exit_()
        b = ProgramBuilder("meta")
        prog(b)
        vm = EbpfVm(verify(b.build()))
        assert vm.run(PKT, ingress_ifindex=7, rx_queue_index=3) == 10


class TestStackAndMaps:
    def test_stack_store_load(self):
        def prog(b):
            b.mov_imm(Reg.R5, 0xDEAD)
            b.stxw(Reg.R10, Reg.R5, -8)
            b.ldxw(Reg.R0, Reg.R10, -8)
            b.exit_()
        assert run(prog)[0] == 0xDEAD

    def test_map_lookup_hit_and_write_back(self):
        table = HashMap(4, 4, 4)
        table.update(b"\x01\x00\x00\x00", (5).to_bytes(4, "little"))

        b = ProgramBuilder("mapwrite")
        mid = b.declare_map(table)
        b.mov_imm(Reg.R5, 1)
        b.stxw(Reg.R10, Reg.R5, -4)
        b.ld_map(Reg.R1, mid)
        b.mov_reg(Reg.R2, Reg.R10)
        b.add_imm(Reg.R2, -4)
        b.call(Helper.MAP_LOOKUP_ELEM)
        b.jeq_imm(Reg.R0, 0, "miss")
        b.ldxw(Reg.R6, Reg.R0, 0)
        b.add_imm(Reg.R6, 1)             # increment the counter in place
        b.stxw(Reg.R0, Reg.R6, 0)
        b.mov_reg(Reg.R0, Reg.R6)
        b.exit_()
        b.label("miss")
        b.mov_imm(Reg.R0, 0)
        b.exit_()
        vm = EbpfVm(verify(b.build()))
        assert vm.run(PKT) == 6
        # The write through the map-value pointer persisted.
        assert table.lookup(b"\x01\x00\x00\x00") == (6).to_bytes(4, "little")

    def test_map_lookup_miss_is_null(self):
        table = HashMap(4, 4, 4)
        b = ProgramBuilder("mapmiss")
        mid = b.declare_map(table)
        b.mov_imm(Reg.R5, 9)
        b.stxw(Reg.R10, Reg.R5, -4)
        b.ld_map(Reg.R1, mid)
        b.mov_reg(Reg.R2, Reg.R10)
        b.add_imm(Reg.R2, -4)
        b.call(Helper.MAP_LOOKUP_ELEM)
        b.jne_imm(Reg.R0, 0, "hit")
        b.mov_imm(Reg.R0, 111)
        b.exit_()
        b.label("hit")
        b.mov_imm(Reg.R0, 222)
        b.exit_()
        assert EbpfVm(verify(b.build())).run(PKT) == 111

    def test_map_update_from_program(self):
        table = HashMap(4, 4, 4)
        b = ProgramBuilder("mapupd")
        mid = b.declare_map(table)
        b.mov_imm(Reg.R5, 3)
        b.stxw(Reg.R10, Reg.R5, -8)      # key = 3
        b.mov_imm(Reg.R5, 77)
        b.stxw(Reg.R10, Reg.R5, -4)      # value = 77
        b.ld_map(Reg.R1, mid)
        b.mov_reg(Reg.R2, Reg.R10)
        b.add_imm(Reg.R2, -8)
        b.mov_reg(Reg.R3, Reg.R10)
        b.add_imm(Reg.R3, -4)
        b.call(Helper.MAP_UPDATE_ELEM)
        b.exit_()
        assert EbpfVm(verify(b.build())).run(PKT) == 0
        assert table.lookup((3).to_bytes(4, "little")) == (77).to_bytes(4, "little")


class TestCostAccounting:
    def test_insn_cost_charged(self):
        cpu = CpuModel(1)
        ctx = ExecContext(cpu, 0, CpuCategory.SOFTIRQ)
        b = ProgramBuilder("count")
        b.mov_imm(Reg.R0, 1)
        b.mov_imm(Reg.R5, 2)
        b.exit_()
        vm = EbpfVm(verify(b.build()), exec_ctx=ctx)
        vm.run(PKT)
        assert vm.insns_executed == 3
        assert cpu.busy_ns() == pytest.approx(3 * DEFAULT_COSTS.ebpf_insn_ns)

    def test_helper_cost_added(self):
        cpu = CpuModel(1)
        ctx = ExecContext(cpu, 0, CpuCategory.SOFTIRQ)
        table = HashMap(4, 4, 4)
        b = ProgramBuilder("helpercost")
        mid = b.declare_map(table)
        b.mov_imm(Reg.R5, 1)
        b.stxw(Reg.R10, Reg.R5, -4)
        b.ld_map(Reg.R1, mid)
        b.mov_reg(Reg.R2, Reg.R10)
        b.add_imm(Reg.R2, -4)
        b.call(Helper.MAP_LOOKUP_ELEM)
        b.exit_()
        vm = EbpfVm(verify(b.build()), exec_ctx=ctx)
        vm.run(PKT)
        expected = (
            7 * DEFAULT_COSTS.ebpf_insn_ns
            + DEFAULT_COSTS.ebpf_helper_ns
            + DEFAULT_COSTS.ebpf_map_lookup_ns
        )
        assert cpu.busy_ns() == pytest.approx(expected)


class TestHelpers:
    def test_ktime(self):
        def prog(b):
            b.call(Helper.KTIME_GET_NS)
            b.exit_()
        b = ProgramBuilder("kt")
        prog(b)
        vm = EbpfVm(verify(b.build()), ktime_ns=12345)
        assert vm.run(PKT) == 12345

    def test_prandom_deterministic_per_program(self):
        def prog(b):
            b.call(Helper.GET_PRANDOM_U32)
            b.exit_()
        b1 = ProgramBuilder("r")
        prog(b1)
        b2 = ProgramBuilder("r")
        prog(b2)
        v1 = EbpfVm(verify(b1.build())).run(PKT)
        v2 = EbpfVm(verify(b2.build())).run(PKT)
        assert v1 == v2  # same program name -> same stream

    def test_adjust_head_grow_and_shrink(self):
        def prog(b):
            b.mov_imm(Reg.R2, -4)        # grow 4 bytes of headroom
            b.call(Helper.XDP_ADJUST_HEAD)
            b.mov_reg(Reg.R6, Reg.R0)
            b.mov_imm(Reg.R2, 4)         # shrink them again
            b.call(Helper.XDP_ADJUST_HEAD)
            b.or_reg(Reg.R0, Reg.R6)
            b.exit_()
        verdict, vm = run(prog)
        assert verdict == 0
        assert vm.pkt_bytes() == PKT
