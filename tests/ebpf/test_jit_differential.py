"""Hypothesis differential suite: JIT vs interpreter, bit for bit.

Every library program (plus hand-built hostile ones that fault) is run
twice over randomized map state, packet bytes, context metadata, and
fault plans — once through the compiled fastpath, once through the pure
interpreter with the fastpath disabled.  The two executions must agree
on the verdict, the (possibly rewritten) packet bytes, the redirect
target, the final map contents and versions, the exact charge sequence,
and every trace counter — including the ``VmFault`` -> ``XDP_ABORTED``
paths.  Both sides build a fresh program instance from the same factory
and replay the same map-population plan, so mutating programs cannot
leak state between the engines.
"""

import contextlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ebpf import jit, programs
from repro.ebpf.isa import Reg
from repro.ebpf.maps import ArrayMap, DevMap, HashMap
from repro.ebpf.program import ProgramBuilder
from repro.ebpf.verifier import verify
from repro.ebpf.xdp import XdpAction, XdpContext
from repro.sim import fastpath, faults, trace

import pytest


class _ChargeLog:
    """A minimal ExecContext stand-in that records (label, ns) pairs."""

    def __init__(self):
        self.charges = []

    def charge(self, ns, label=None):
        self.charges.append((label, ns))


def _hostile_oob_load():
    """Reads far past the end of any packet we generate -> VmFault."""
    b = ProgramBuilder("hostile_oob_load")
    b.mov_reg(Reg.R2, Reg.R1)
    b.ldxw(Reg.R2, Reg.R1, 0)
    b.ldxw(Reg.R3, Reg.R2, 4096)
    b.mov_imm(Reg.R0, 2)
    b.exit_()
    return verify(b.build())


def _hostile_oob_store():
    """Writes past the 512-byte stack -> VmFault on the store path."""
    b = ProgramBuilder("hostile_oob_store")
    b.mov_reg(Reg.R2, Reg.R10)
    b.stw(Reg.R2, 64, 7)
    b.mov_imm(Reg.R0, 2)
    b.exit_()
    return verify(b.build())


def _hostile_ptr_return():
    """Returns a pointer instead of a scalar verdict -> VmFault at exit."""
    b = ProgramBuilder("hostile_ptr_return")
    b.mov_reg(Reg.R0, Reg.R10)
    b.exit_()
    return verify(b.build())


FACTORIES = {
    "drop": lambda: programs.drop_program(),
    "pass": lambda: programs.pass_program(),
    "parse_drop": lambda: programs.parse_drop_program(),
    "parse_lookup_drop": lambda: programs.parse_lookup_drop_program()[0],
    "parse_swap_tx": lambda: programs.parse_swap_tx_program(),
    "l2_forward": lambda: programs.l2_forward_program()[0],
    "xsk_redirect": lambda: programs.xsk_redirect_program()[0],
    "steering": lambda: programs.steering_program()[0],
    "container_redirect": lambda: programs.container_redirect_program()[0],
    "l4_load_balancer": lambda: programs.l4_load_balancer_program()[0],
    "hostile_oob_load": _hostile_oob_load,
    "hostile_oob_store": _hostile_oob_store,
    "hostile_ptr_return": _hostile_ptr_return,
}


# --------------------------------------------------------------------------
# Strategies


def _eth_frame(dst, src, ethertype, rest):
    return dst + src + ethertype + rest


_eth_packets = st.builds(
    _eth_frame,
    st.binary(min_size=6, max_size=6),
    st.binary(min_size=6, max_size=6),
    st.sampled_from([b"\x08\x00", b"\x86\xdd", b"\x08\x06", b"\x12\x34"]),
    st.binary(max_size=80),
)

_packets = st.one_of(st.binary(max_size=96), _eth_packets)


def _draw_map_plan(data, program, pkt):
    """One population plan per map id, replayable on a fresh instance.

    HashMap keys are sometimes derived from the packet prefix so that
    programs whose lookup keys come from header fields (l2 fib,
    container ip table, LB 5-tuple) actually take their hit paths.
    """
    plan = {}
    for map_id in sorted(program.maps):
        m = program.maps[map_id]
        ops = []
        n = data.draw(st.integers(min_value=0,
                                  max_value=min(m.max_entries, 4)),
                      label=f"map{map_id}.entries")
        if isinstance(m, DevMap):  # includes XskMap
            for i in range(n):
                slot = data.draw(
                    st.integers(min_value=0, max_value=m.max_entries - 1),
                    label=f"map{map_id}.slot{i}")
                ifindex = data.draw(st.integers(min_value=1, max_value=9),
                                    label=f"map{map_id}.ifindex{i}")
                ops.append(("dev", slot, ifindex))
        elif isinstance(m, HashMap):
            for i in range(n):
                from_pkt = data.draw(st.booleans(),
                                     label=f"map{map_id}.frompkt{i}")
                if from_pkt:
                    key = (bytes(pkt) + bytes(m.key_size))[:m.key_size]
                else:
                    key = data.draw(
                        st.binary(min_size=m.key_size, max_size=m.key_size),
                        label=f"map{map_id}.key{i}")
                value = data.draw(
                    st.binary(min_size=m.value_size,
                              max_size=m.value_size),
                    label=f"map{map_id}.value{i}")
                ops.append(("hash", key, value))
        plan[map_id] = ops
    return plan


def _apply_map_plan(plan, program):
    for map_id, ops in plan.items():
        m = program.maps[map_id]
        for op in ops:
            if op[0] == "dev":
                m.set_dev(op[1], op[2])
            else:
                m.update(op[1], op[2])


def _dump_maps(program):
    """Full observable state of every map: version + contents."""
    out = {}
    for map_id in sorted(program.maps):
        m = program.maps[map_id]
        if isinstance(m, DevMap):
            state = tuple(sorted(m._slots.items()))
        elif isinstance(m, HashMap):
            state = tuple(sorted(m._table.items()))
        elif isinstance(m, ArrayMap):
            state = tuple(m._slots)
        else:
            state = tuple(sorted(getattr(m, "_entries", {}).items()))
        out[map_id] = (m.version, state)
    return out


def _norm_redirect(redirect, program):
    """Replace the map object with its program-local id so redirect
    targets compare across two independent program instances."""
    if redirect is None:
        return None
    if redirect[0] == "ifindex":
        return redirect
    _, bpf_map, slot = redirect
    for map_id, m in program.maps.items():
        if m is bpf_map:
            return ("map", map_id, slot)
    return ("map", "?", slot)


def _fault_plan(seed, nth):
    return faults.FaultPlan(
        seed=seed,
        rules=[faults.FaultRule("ebpf.map_lookup_fault",
                                nth=nth, max_fires=2)],
    )


def _observe(factory, map_plan, pkt, ktime, ifindex, queue, fault, jit_on):
    """Run one engine over a fresh program instance; return everything
    the outside world could notice."""
    program = factory()
    _apply_map_plan(map_plan, program)
    ctx = XdpContext(program)
    log = _ChargeLog()
    with contextlib.ExitStack() as stack:
        if jit_on:
            assert fastpath.ENABLED and jit.ENABLED
        else:
            stack.enter_context(fastpath.disabled())
        if fault is not None:
            stack.enter_context(faults.injecting(_fault_plan(*fault)))
        rec = stack.enter_context(trace.recording())
        verdict = ctx.run(pkt, exec_ctx=log, ingress_ifindex=ifindex,
                          rx_queue_index=queue, ktime_ns=ktime)
        counters = dict(rec.counters)
        ledger = rec.ledger()
    return {
        "action": verdict.action,
        "data": bytes(verdict.data),
        "redirect": _norm_redirect(verdict.redirect, program),
        "insns": verdict.insns_executed,
        "touched": verdict.touched_data,
        "charges": log.charges,
        "counters": counters,
        "ledger": ledger,
        "maps": _dump_maps(program),
    }


# --------------------------------------------------------------------------
# The differential property


@pytest.mark.parametrize("name", sorted(FACTORIES))
@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_jit_matches_interpreter(name, data):
    factory = FACTORIES[name]
    pkt = data.draw(_packets, label="packet")
    ktime = data.draw(st.integers(min_value=0, max_value=10**9),
                      label="ktime")
    ifindex = data.draw(st.integers(min_value=0, max_value=7),
                        label="ifindex")
    queue = data.draw(st.integers(min_value=0, max_value=3), label="queue")
    fault = None
    if data.draw(st.booleans(), label="inject_fault"):
        fault = (data.draw(st.integers(min_value=0, max_value=2**16),
                           label="fault_seed"),
                 data.draw(st.integers(min_value=1, max_value=3),
                           label="fault_nth"))
    map_plan = _draw_map_plan(data, factory(), pkt)

    jit_side = _observe(factory, map_plan, pkt, ktime, ifindex, queue,
                        fault, jit_on=True)
    interp_side = _observe(factory, map_plan, pkt, ktime, ifindex, queue,
                           fault, jit_on=False)
    assert jit_side == interp_side


@pytest.mark.parametrize(
    "name", ["hostile_oob_load", "hostile_oob_store", "hostile_ptr_return"])
def test_hostile_programs_abort_identically(name):
    """Faulting programs compile, run, and abort the same on both
    engines.  A mid-run fault (the OOB accesses) retires no
    instructions; a bad *verdict* (pointer return) faults only after
    the run's counters have flushed — on both engines alike."""
    factory = FACTORIES[name]
    assert jit.compiled_for(factory()) is not None
    for jit_on in (True, False):
        obs = _observe(factory, {}, bytes(64), 0, 0, 0, None, jit_on)
        assert obs["action"] == XdpAction.ABORTED
        if name != "hostile_ptr_return":
            assert "ebpf.insns_retired" not in obs["counters"]
    jit_side = _observe(factory, {}, bytes(64), 0, 0, 0, None, True)
    interp_side = _observe(factory, {}, bytes(64), 0, 0, 0, None, False)
    assert jit_side == interp_side


def test_lookup_fault_path_is_shared(capsys):
    """The injected map-lookup fault is consulted before either engine
    dispatches, so both sides see the same PASS + charge shape."""
    program = programs.parse_lookup_drop_program()[0]
    obs = []
    for jit_on in (True, False):
        obs.append(_observe(lambda: programs.parse_lookup_drop_program()[0],
                            {}, bytes(64), 0, 0, 0, (3, 1), jit_on))
    assert obs[0] == obs[1]
    assert obs[0]["action"] == XdpAction.PASS
    assert obs[0]["counters"].get("ebpf.map_lookup_faults") == 1
