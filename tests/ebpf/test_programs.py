import pytest

from repro.ebpf.programs import (
    container_ip_key,
    container_redirect_program,
    drop_program,
    l2_key,
    l4_load_balancer_program,
    lb_key,
    parse_drop_program,
    parse_lookup_drop_program,
    parse_swap_tx_program,
    pass_program,
    steering_program,
    xsk_redirect_program,
)
from repro.ebpf.xdp import XdpAction, XdpContext
from repro.net.addresses import MacAddress, ip_to_int
from repro.net.builder import make_tcp_packet, make_udp_packet

SRC = MacAddress("02:00:00:00:00:01")
DST = MacAddress("02:00:00:00:00:02")
UDP = make_udp_packet(SRC, DST, "10.0.0.1", "10.0.0.2", 1000, 2000,
                      frame_len=64).data


def test_drop_program():
    verdict = XdpContext(drop_program()).run(UDP)
    assert verdict.action == XdpAction.DROP
    assert verdict.insns_executed == 2


def test_pass_program():
    assert XdpContext(pass_program()).run(UDP).action == XdpAction.PASS


def test_parse_drop_program_drops_everything():
    ctx = XdpContext(parse_drop_program())
    assert ctx.run(UDP).action == XdpAction.DROP
    # Non-IPv4 takes the early exit but still drops.
    from repro.net.builder import make_arp_request

    arp = make_arp_request(SRC, "10.0.0.1", "10.0.0.2").data
    assert ctx.run(arp).action == XdpAction.DROP


def test_parse_drop_executes_more_insns_than_drop():
    plain = XdpContext(drop_program()).run(UDP)
    parsed = XdpContext(parse_drop_program()).run(UDP)
    assert parsed.insns_executed > plain.insns_executed


def test_parse_lookup_drop_queries_the_l2_table():
    prog, table = parse_lookup_drop_program()
    table.update(l2_key(DST.to_bytes()), (1).to_bytes(4, "little"))
    verdict = XdpContext(prog).run(UDP)
    assert verdict.action == XdpAction.DROP
    lookup = XdpContext(parse_lookup_drop_program()[0]).run(UDP)
    drop_only = XdpContext(parse_drop_program()).run(UDP)
    assert lookup.insns_executed > drop_only.insns_executed


def test_parse_swap_tx_swaps_macs():
    verdict = XdpContext(parse_swap_tx_program()).run(UDP)
    assert verdict.action == XdpAction.TX
    assert verdict.data[0:6] == SRC.to_bytes()   # dst <- old src
    assert verdict.data[6:12] == DST.to_bytes()  # src <- old dst
    assert verdict.data[12:] == UDP[12:]


def test_parse_swap_tx_drops_non_ip():
    from repro.net.builder import make_arp_request

    arp = make_arp_request(SRC, "10.0.0.1", "10.0.0.2").data
    assert XdpContext(parse_swap_tx_program()).run(arp).action == XdpAction.DROP


class TestXskRedirect:
    def test_redirects_to_queue_socket(self):
        prog, xsks = xsk_redirect_program(n_queues=4)
        xsks.set_dev(2, 1001)  # XSK id 1001 bound to queue 2
        verdict = XdpContext(prog).run(UDP, rx_queue_index=2)
        assert verdict.action == XdpAction.REDIRECT
        kind, target_map, slot = verdict.redirect
        assert kind == "map"
        assert target_map is xsks
        assert slot == 2

    def test_falls_back_to_pass_without_socket(self):
        prog, _xsks = xsk_redirect_program(n_queues=4)
        verdict = XdpContext(prog).run(UDP, rx_queue_index=2)
        assert verdict.action == XdpAction.PASS


class TestSteering:
    def test_mgmt_tcp_goes_to_stack(self):
        prog, xsks = steering_program(n_queues=2)
        xsks.set_dev(0, 1)
        ssh = make_tcp_packet(SRC, DST, "10.0.0.1", "10.0.0.2",
                              dst_port=22).data
        assert XdpContext(prog).run(ssh).action == XdpAction.PASS
        openflow = make_tcp_packet(SRC, DST, "10.0.0.1", "10.0.0.2",
                                   dst_port=6653).data
        assert XdpContext(prog).run(openflow).action == XdpAction.PASS

    def test_data_traffic_goes_to_xsk(self):
        prog, xsks = steering_program(n_queues=2)
        xsks.set_dev(0, 1)
        assert XdpContext(prog).run(UDP).action == XdpAction.REDIRECT
        tcp_data = make_tcp_packet(SRC, DST, "10.0.0.1", "10.0.0.2",
                                   dst_port=5001).data
        assert XdpContext(prog).run(tcp_data).action == XdpAction.REDIRECT


class TestContainerRedirect:
    def test_known_ip_goes_to_veth(self):
        prog, xsks, devs, ips = container_redirect_program()
        xsks.set_dev(0, 1)
        devs.set_dev(5, 301)  # slot 5 -> veth ifindex 301
        ips.update(container_ip_key(ip_to_int("10.0.0.2")),
                   (5).to_bytes(4, "little"))
        verdict = XdpContext(prog).run(UDP)
        assert verdict.action == XdpAction.REDIRECT
        kind, target_map, slot = verdict.redirect
        assert target_map is devs
        assert slot == 5

    def test_unknown_ip_goes_to_userspace(self):
        prog, xsks, _devs, _ips = container_redirect_program()
        xsks.set_dev(0, 1)
        verdict = XdpContext(prog).run(UDP)
        assert verdict.action == XdpAction.REDIRECT
        _, target_map, _ = verdict.redirect
        assert target_map is xsks


class TestL4LoadBalancer:
    def test_matching_flow_rewritten_and_bounced(self):
        prog, xsks, backends = l4_load_balancer_program()
        xsks.set_dev(0, 1)
        backend_ip = ip_to_int("10.0.0.99")
        backends.update(
            lb_key(ip_to_int("10.0.0.1"), ip_to_int("10.0.0.2"),
                   1000, 2000, 17),
            backend_ip.to_bytes(4, "little"),
        )
        verdict = XdpContext(prog).run(UDP)
        assert verdict.action == XdpAction.TX
        assert verdict.data[30:34] == backend_ip.to_bytes(4, "big")

    def test_non_matching_flow_to_userspace(self):
        prog, xsks, _backends = l4_load_balancer_program()
        xsks.set_dev(0, 1)
        verdict = XdpContext(prog).run(UDP)
        assert verdict.action == XdpAction.REDIRECT


def test_all_programs_are_verified():
    progs = [
        drop_program(),
        pass_program(),
        parse_drop_program(),
        parse_lookup_drop_program()[0],
        parse_swap_tx_program(),
        xsk_redirect_program()[0],
        steering_program()[0],
        container_redirect_program()[0],
        l4_load_balancer_program()[0],
    ]
    assert all(p.verified for p in progs)


def test_l2_key_requires_six_bytes():
    with pytest.raises(ValueError):
        l2_key(b"\x00" * 5)


def test_table5_complexity_ordering():
    """Table 5: each task executes strictly more instructions than the
    previous, which is what makes its rate lower (§5.4 outcome #4)."""
    lookup_prog, table = parse_lookup_drop_program()
    table.update(l2_key(DST.to_bytes()), (1).to_bytes(4, "little"))
    a = XdpContext(drop_program()).run(UDP).insns_executed
    b = XdpContext(parse_drop_program()).run(UDP).insns_executed
    c = XdpContext(lookup_prog).run(UDP).insns_executed
    d = XdpContext(parse_swap_tx_program()).run(UDP).insns_executed
    assert a < b < c
    assert d > b
