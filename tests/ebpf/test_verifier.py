import pytest

from repro.ebpf.isa import Insn, Reg
from repro.ebpf.maps import HashMap
from repro.ebpf.program import Program, ProgramBuilder
from repro.ebpf.verifier import MAX_INSNS, VerifierError, verify


def _prog(*insns: Insn, maps=None) -> Program:
    return Program("manual", tuple(insns), maps or {})


EXIT = Insn("exit")
MOV0 = Insn("mov_imm", dst=0, imm=0)


def test_accepts_minimal_program():
    p = verify(_prog(MOV0, EXIT))
    assert p.verified


def test_rejects_empty():
    with pytest.raises(VerifierError, match="empty"):
        verify(_prog())


def test_rejects_oversized():
    insns = [MOV0] * MAX_INSNS + [EXIT]
    with pytest.raises(VerifierError, match="too large"):
        verify(_prog(*insns))


def test_rejects_unknown_opcode():
    with pytest.raises(VerifierError, match="unknown opcode"):
        verify(_prog(Insn("frobnicate"), EXIT))


def test_rejects_bad_register():
    with pytest.raises(VerifierError, match="bad dst"):
        verify(_prog(Insn("mov_imm", dst=11, imm=0), EXIT))


def test_rejects_write_to_r10():
    with pytest.raises(VerifierError, match="r10 is read-only"):
        verify(_prog(Insn("mov_imm", dst=10, imm=0), EXIT))


def test_rejects_back_edge():
    # jeq with a negative offset = a loop.
    with pytest.raises(VerifierError, match="back-edge"):
        verify(_prog(MOV0, Insn("jeq_imm", dst=0, off=-1, imm=0), EXIT))


def test_allows_zero_offset_branch():
    # Branching to the next insn is a no-op, not a loop.
    p = verify(_prog(MOV0, Insn("jeq_imm", dst=0, off=0, imm=0), EXIT))
    assert p.verified


def test_rejects_jump_past_end():
    with pytest.raises(VerifierError, match="past the end"):
        verify(_prog(Insn("ja", off=5), EXIT))


def test_rejects_fall_off_end():
    with pytest.raises(VerifierError, match="fall off"):
        verify(_prog(MOV0))


def test_rejects_unknown_helper():
    with pytest.raises(VerifierError, match="unknown helper"):
        verify(_prog(Insn("call", imm=9999), EXIT))


def test_rejects_undeclared_map():
    with pytest.raises(VerifierError, match="undeclared map"):
        verify(_prog(Insn("ld_map", dst=1, imm=7), EXIT))


def test_accepts_declared_map():
    m = HashMap(4, 4, 4)
    p = verify(_prog(Insn("ld_map", dst=1, imm=7), EXIT, maps={7: m}))
    assert p.verified


def test_rejects_stack_overflow_access():
    with pytest.raises(VerifierError, match="stack access"):
        verify(_prog(Insn("ldxw", dst=0, src=10, off=-600), EXIT))
    with pytest.raises(VerifierError, match="stack access"):
        verify(_prog(Insn("stxw", dst=10, src=0, off=0), EXIT))


def test_builder_refuses_backward_label():
    b = ProgramBuilder("loop")
    b.label("top")
    b.mov_imm(Reg.R0, 0)
    with pytest.raises(ValueError, match="loops are not allowed"):
        b.ja("top")


def test_builder_rejects_unresolved_labels():
    b = ProgramBuilder("dangling")
    b.jeq_imm(Reg.R0, 0, "nowhere")
    b.mov_imm(Reg.R0, 0)
    b.exit_()
    with pytest.raises(ValueError, match="unresolved"):
        b.build()


def test_builder_rejects_duplicate_label():
    b = ProgramBuilder("dup")
    b.label("a")
    with pytest.raises(ValueError, match="duplicate"):
        b.label("a")


def test_builder_requires_trailing_exit():
    b = ProgramBuilder("noexit")
    b.mov_imm(Reg.R0, 0)
    with pytest.raises(ValueError, match="end with exit"):
        b.build()


def test_vm_refuses_unverified_program():
    from repro.ebpf.vm import EbpfVm, VmFault

    prog = _prog(MOV0, EXIT)  # never verified
    with pytest.raises(VmFault, match="not verified"):
        EbpfVm(prog)
