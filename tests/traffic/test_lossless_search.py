"""Property suite for the TRex-style lossless-rate binary search.

The three contract properties (DESIGN §12):

1. the search converges to within the requested resolution of the true
   capacity,
2. the found rate is monotone non-increasing in per-packet cost,
3. the search trace brackets the returned rate: the rate *is* the
   highest lossless probe, every lossy probe sits strictly above it,
   and the final bracket is no wider than the resolution.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traffic.lossless import (
    LosslessSearch,
    aggregate_capacity_mpps,
    capacity_loss_model,
)
from repro.traffic.trex import lossless_search_from_lanes, max_lossless_mpps

MAX_RATE = 37.2  # ~64B line rate at 25 GbE

capacities = st.floats(min_value=0.05, max_value=50.0,
                       allow_nan=False, allow_infinity=False)
resolutions = st.floats(min_value=1e-4, max_value=1.0,
                        allow_nan=False, allow_infinity=False)


def _search(resolution=0.01):
    return LosslessSearch(max_rate_mpps=MAX_RATE,
                          resolution_mpps=resolution)


@settings(max_examples=200, deadline=None)
@given(capacity=capacities, resolution=resolutions)
def test_converges_within_resolution(capacity, resolution):
    result = _search(resolution).run(capacity_loss_model(capacity))
    assert result.converged
    true_rate = min(capacity, MAX_RATE)
    assert result.rate_mpps <= true_rate + 1e-9
    assert true_rate - result.rate_mpps <= resolution + 1e-9


@settings(max_examples=200, deadline=None)
@given(
    cost_a=st.floats(min_value=20.0, max_value=20_000.0),
    cost_b=st.floats(min_value=20.0, max_value=20_000.0),
)
def test_monotone_non_increasing_in_per_packet_cost(cost_a, cost_b):
    """A DUT that burns more ns per packet can never search higher."""
    lo_cost, hi_cost = sorted((cost_a, cost_b))
    search = _search()

    def rate_at(cost_ns):
        return search.run(capacity_loss_model(1e3 / cost_ns)).rate_mpps

    assert rate_at(lo_cost) >= rate_at(hi_cost)


@settings(max_examples=200, deadline=None)
@given(capacity=capacities, resolution=resolutions)
def test_trace_brackets_the_returned_rate(capacity, resolution):
    result = _search(resolution).run(capacity_loss_model(capacity))
    lossless = [p.offered_mpps for p in result.trace if p.lossless]
    lossy = [p.offered_mpps for p in result.trace if not p.lossless]
    if lossless:
        assert max(lossless) == pytest.approx(result.rate_mpps)
    else:
        assert result.rate_mpps == 0.0
    for rate in lossy:
        assert rate > result.rate_mpps
    assert result.bracket_lo <= result.rate_mpps <= result.bracket_hi
    if lossy:  # bisection ran: the final bracket is tight
        assert result.bracket_hi - result.bracket_lo <= resolution + 1e-9
    assert result.iterations == len(result.trace)


@settings(max_examples=100, deadline=None)
@given(capacity=capacities)
def test_search_is_deterministic(capacity):
    a = _search().run(capacity_loss_model(capacity))
    b = _search().run(capacity_loss_model(capacity))
    assert a.as_dict() == b.as_dict()


@settings(max_examples=100, deadline=None)
@given(
    lanes=st.lists(
        st.tuples(st.floats(min_value=1.0, max_value=1e6),
                  st.integers(min_value=1, max_value=10_000)),
        min_size=1, max_size=8,
    ),
)
def test_search_agrees_with_closed_form(lanes):
    """The probe-based search lands within one resolution of the
    closed-form ``max_lossless_mpps`` it generalizes."""
    busy = [b for b, _ in lanes]
    pkts = [p for _, p in lanes]
    closed = max_lossless_mpps(busy, pkts, link_gbps=25.0, frame_len=64)
    result = lossless_search_from_lanes(busy, pkts, link_gbps=25.0,
                                        frame_len=64)
    assert result.converged
    assert abs(closed - result.rate_mpps) <= 0.01 + 1e-9


def test_loss_model_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        capacity_loss_model(0.0)


def test_lane_mismatch_rejected():
    with pytest.raises(ValueError):
        aggregate_capacity_mpps([1.0], [1, 2])


def test_invalid_loss_model_rejected():
    with pytest.raises(ValueError):
        _search().run(lambda rate: 1.5)


@pytest.mark.parametrize("kwargs", [
    {"max_rate_mpps": 0.0},
    {"max_rate_mpps": 10.0, "min_rate_mpps": 10.0},
    {"max_rate_mpps": 10.0, "resolution_mpps": 0.0},
    {"max_rate_mpps": 10.0, "loss_tolerance": 1.0},
    {"max_rate_mpps": 10.0, "max_iterations": 0},
])
def test_invalid_parameters_rejected(kwargs):
    with pytest.raises(ValueError):
        LosslessSearch(**kwargs)


def test_line_rate_dut_converges_on_first_probe():
    """A DUT faster than the wire is lossless at the first (line) probe."""
    result = _search().run(capacity_loss_model(1000.0))
    assert result.rate_mpps == MAX_RATE
    assert result.iterations == 1
    assert result.converged
