import pytest

from repro.net.flow import extract_flow
from repro.sim.cpu import CpuCategory, CpuModel, ExecContext
from repro.traffic.iperf import measure_throughput
from repro.traffic.netperf import TcpRrRunner
from repro.traffic.trex import FlowSpec, TrexStream, max_lossless_mpps


class TestTrexStream:
    def test_single_flow_identical_packets(self):
        stream = TrexStream(FlowSpec(n_flows=1), frame_len=64)
        a, b = stream.next_packet(), stream.next_packet()
        assert a.data == b.data
        assert stream.distinct_flows == 1

    def test_frame_length_convention(self):
        stream = TrexStream(FlowSpec(), frame_len=64)
        assert len(stream.next_packet()) == 60  # 64 on the wire incl FCS
        big = TrexStream(FlowSpec(), frame_len=1518)
        assert len(big.next_packet()) == 1514

    def test_thousand_flows_distinct(self):
        stream = TrexStream(FlowSpec(n_flows=1000), frame_len=64)
        assert stream.distinct_flows > 950  # rng collisions possible, few

    def test_deterministic(self):
        s1 = TrexStream(FlowSpec(n_flows=100))
        s2 = TrexStream(FlowSpec(n_flows=100))
        assert [s1.next_packet().data for _ in range(50)] == [
            s2.next_packet().data for _ in range(50)
        ]

    def test_template_fast_path_matches_full_builds(self):
        """Multi-flow streams build frames by patching a template; every
        frame (bytes, offsets, checksum) must equal a from-scratch
        make_udp_packet build for the same addresses."""
        from repro.net.addresses import MacAddress, ip_to_int
        from repro.net.builder import make_udp_packet
        from repro.net.ipv4 import Ipv4Header
        from repro.sim.rng import make_rng

        spec = FlowSpec(n_flows=64)
        stream = TrexStream(spec, frame_len=64)
        rng = make_rng("trex", 64, 64, 42)
        src_base, dst_base = ip_to_int(spec.src_base), ip_to_int(spec.dst_base)
        for i, pkt in enumerate(stream._packets):
            src = src_base + rng.randrange(100_000)
            dst = dst_base + rng.randrange(100_000)
            ref = make_udp_packet(
                MacAddress.local(0xE0001), MacAddress.local(0xE0002),
                src, dst, spec.src_port, spec.dst_port,
                frame_len=64, fill_checksum=False)
            assert pkt.data == ref.data, f"flow {i} diverged"
            assert pkt.meta.l3_offset == ref.meta.l3_offset
            assert pkt.meta.l4_offset == ref.meta.l4_offset
            hdr = Ipv4Header.unpack(pkt.data, 14)
            assert (hdr.src, hdr.dst) == (src, dst)

    def test_cycles_through_flows(self):
        stream = TrexStream(FlowSpec(n_flows=3))
        keys = [extract_flow(stream.next_packet().data) for _ in range(6)]
        assert keys[0] == keys[3]
        assert len({k.five_tuple() for k in keys}) == 3

    def test_burst(self):
        stream = TrexStream(FlowSpec(n_flows=2))
        assert len(stream.burst(10)) == 10

    def test_rejects_zero_flows(self):
        with pytest.raises(ValueError):
            FlowSpec(n_flows=0)


class TestMaxLossless:
    def test_single_lane(self):
        # 1000 packets in 100 us -> 10 Mpps, under a 25G/64B line.
        assert max_lossless_mpps([100_000], [1000], 25, 64) == pytest.approx(10.0)

    def test_lanes_aggregate(self):
        rate = max_lossless_mpps([100_000, 100_000], [1000, 1000], 25, 64)
        assert rate == pytest.approx(20.0)

    def test_line_rate_cap(self):
        rate = max_lossless_mpps([10_000], [1000], 10, 64)
        assert rate == pytest.approx(14.88, abs=0.01)

    def test_idle_lane_ignored(self):
        assert max_lossless_mpps([100_000, 0], [1000, 0], 25, 64) == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            max_lossless_mpps([1], [1, 2], 10, 64)
        with pytest.raises(ValueError):
            max_lossless_mpps([0], [10], 10, 64)


class TestIperf:
    def test_bottleneck_core_determines_gbps(self):
        cpu = CpuModel(4)
        sender = ExecContext(cpu, 0, CpuCategory.GUEST)
        switch = ExecContext(cpu, 1, CpuCategory.USER)

        def step():
            sender.charge(100)
            switch.charge(400)  # the busy stage
            return 1000  # bytes

        result = measure_throughput(cpu, step, total_bytes=100_000)
        # 1000 B per 400 ns bottleneck = 2.5 B/ns = 20 Gbps.
        assert result.gbps == pytest.approx(20.0)
        assert not result.capped_by_link
        assert result.per_cpu_busy_ns[1] > result.per_cpu_busy_ns[0]

    def test_link_cap(self):
        cpu = CpuModel(1)
        ctx = ExecContext(cpu, 0, CpuCategory.USER)

        def step():
            ctx.charge(1)
            return 10_000

        result = measure_throughput(cpu, step, total_bytes=50_000,
                                    link_gbps=10)
        assert result.gbps == 10
        assert result.capped_by_link

    def test_no_progress_detected(self):
        cpu = CpuModel(1)
        with pytest.raises(RuntimeError, match="no progress"):
            measure_throughput(cpu, lambda: 0, total_bytes=10)

    def test_requires_positive_budget(self):
        with pytest.raises(ValueError):
            measure_throughput(CpuModel(1), lambda: 1, total_bytes=0)


class TestNetperf:
    def test_collects_distribution(self):
        cpu = CpuModel(2)
        ctx = ExecContext(cpu, 0, CpuCategory.USER)
        runner = TcpRrRunner([ctx], jitter_terms={"irq": (5_000, 0.4)})

        def txn():
            ctx.charge(20_000, label="path")

        result = runner.run(txn, n_transactions=500)
        # 20 us fixed + ~5 us median jitter.
        assert 23 < result.p50_us < 28
        assert result.p99_us > result.p90_us >= result.p50_us
        assert result.transactions_per_s == pytest.approx(
            1e6 / result.mean_us)
        assert "path" in result.component_means_us

    def test_jitter_widens_tail(self):
        cpu = CpuModel(1)
        ctx = ExecContext(cpu, 0, CpuCategory.USER)

        def txn():
            ctx.charge(10_000)

        tight = TcpRrRunner([ctx], {"w": (2_000, 0.05)}).run(txn, 300)
        wide = TcpRrRunner([ctx], {"w": (2_000, 0.9)}).run(txn, 300)
        assert (wide.p99_us - wide.p50_us) > (tight.p99_us - tight.p50_us)

    def test_trace_detached_after_run(self):
        cpu = CpuModel(1)
        ctx = ExecContext(cpu, 0, CpuCategory.USER)
        TcpRrRunner([ctx], {}).run(lambda: ctx.charge(1), 10)
        assert ctx.trace is None

    def test_requires_transactions(self):
        with pytest.raises(ValueError):
            TcpRrRunner([], {}).run(lambda: None, 0)
