import pytest

from repro.net.addresses import MacAddress
from repro.net.builder import make_tcp_packet, make_udp_packet
from repro.sim.costs import DEFAULT_COSTS
from repro.sim.cpu import CpuCategory, CpuModel, ExecContext, LatencyTrace
from repro.vhost.vhostuser import VhostUserPort
from repro.vhost.virtio import VirtioNic, Virtqueue


def mac(i):
    return MacAddress.local(i)


PKT = make_udp_packet(mac(1), mac(2), "10.0.0.1", "10.0.0.2", frame_len=64)


@pytest.fixture
def cpu():
    return CpuModel(4)


@pytest.fixture
def guest(cpu):
    return ExecContext(cpu, 0, CpuCategory.GUEST)


@pytest.fixture
def pmd(cpu):
    return ExecContext(cpu, 1, CpuCategory.USER)


class TestVirtqueue:
    def test_fifo_and_capacity(self):
        q = Virtqueue(size=2)
        assert q.push(PKT)
        assert q.push(PKT)
        assert not q.push(PKT)
        assert q.drops_full == 1
        assert len(q.pop_batch(10)) == 2

    def test_bad_size(self):
        with pytest.raises(ValueError):
            Virtqueue(0)


class TestVirtioNic:
    def _nic(self, **kwargs):
        nic = VirtioNic("eth0", mac(5), **kwargs)
        nic.set_up()
        return nic

    def test_transmit_lands_in_tx_queue(self, guest):
        nic = self._nic()
        assert nic.transmit(PKT.clone(), guest)
        assert len(nic.tx_queue) == 1

    def test_kick_skipped_when_backend_polls(self, cpu, guest):
        nic = self._nic()
        nic.backend_polls = True
        nic.transmit(PKT.clone(), guest)
        polling_cost = cpu.busy_ns()
        assert nic.tx_queue.kicks == 0

        cpu2 = CpuModel(1)
        guest2 = ExecContext(cpu2, 0, CpuCategory.GUEST)
        nic2 = self._nic()
        nic2.backend_polls = False
        nic2.transmit(PKT.clone(), guest2)
        assert nic2.tx_queue.kicks == 1
        assert cpu2.busy_ns() > polling_cost + DEFAULT_COSTS.vmexit_ns

    def test_no_csum_offload_charges_guest(self, cpu, guest):
        nic = self._nic(csum_offload=False)
        pkt = PKT.clone()
        pkt.meta.csum_partial = True
        nic.backend_polls = True
        nic.transmit(pkt, guest)
        assert not pkt.meta.csum_partial
        assert cpu.busy_ns(category=CpuCategory.GUEST) >= DEFAULT_COSTS.checksum_cost(len(pkt))

    def test_no_tso_segments_in_guest(self, cpu, guest):
        nic = self._nic(tso=False)
        nic.backend_polls = True
        big = make_tcp_packet(mac(1), mac(2), "10.0.0.1", "10.0.0.2",
                              payload=b"\x00" * 8000, frame_len=8100)
        big.meta.gso_size = 1448
        nic.transmit(big, guest)
        assert big.meta.gso_size == 0
        assert cpu.busy_ns() > 5 * DEFAULT_COSTS.software_gso_per_segment_ns

    def test_tso_keeps_super_segment(self, guest):
        nic = self._nic(tso=True)
        nic.backend_polls = True
        big = make_tcp_packet(mac(1), mac(2), "10.0.0.1", "10.0.0.2",
                              payload=b"\x00" * 8000, frame_len=8100)
        big.meta.gso_size = 1448
        nic.transmit(big, guest)
        assert nic.tx_queue.pop_batch(1)[0].meta.gso_size == 1448

    def test_guest_service_rx_delivers(self, guest):
        nic = self._nic()
        got = []
        nic.set_rx_handler(lambda pkt, c: got.append(pkt))
        nic.rx_queue.push(PKT)
        assert nic.guest_service_rx(guest) == 1
        assert len(got) == 1


class TestVhostUserPort:
    def test_guest_to_ovs(self, guest, pmd):
        nic = VirtioNic("eth0", mac(5))
        nic.set_up()
        port = VhostUserPort("vhost0", nic)
        nic.transmit(PKT.clone(), guest)
        pkts = port.rx_burst(pmd)
        assert len(pkts) == 1
        assert port.rx_packets == 1

    def test_ovs_to_guest(self, pmd):
        nic = VirtioNic("eth0", mac(5))
        port = VhostUserPort("vhost0", nic)
        assert port.tx_burst([PKT, PKT], pmd) == 2
        assert len(nic.rx_queue) == 2

    def test_no_syscall_on_either_side(self, cpu, guest, pmd):
        """The whole point of vhostuser: no SYSTEM time anywhere."""
        nic = VirtioNic("eth0", mac(5))
        nic.set_up()
        port = VhostUserPort("vhost0", nic)
        nic.transmit(PKT.clone(), guest)
        port.rx_burst(pmd)
        port.tx_burst([PKT.clone()], pmd)
        assert cpu.busy_ns(category=CpuCategory.SYSTEM) == 0

    def test_vhost_cheaper_than_tap(self, pmd):
        """Figure 8/9: vhostuser beats tap because tap pays sendto."""
        from repro.kernel.tap import TapDevice

        cpu_tap = CpuModel(1)
        ctx_tap = ExecContext(cpu_tap, 0, CpuCategory.USER)
        tap = TapDevice("tap0", mac(7))
        tap.set_up()
        tap.set_rx_handler(lambda pkt, c: None)
        tap.user_write(PKT.clone(), ctx_tap)

        cpu_vh = CpuModel(1)
        ctx_vh = ExecContext(cpu_vh, 0, CpuCategory.USER)
        port = VhostUserPort("vhost0", VirtioNic("eth0", mac(5)))
        port.tx_burst([PKT.clone()], ctx_vh)
        assert cpu_tap.busy_ns() > 1.5 * cpu_vh.busy_ns()

    def test_tx_drops_when_guest_queue_full(self, pmd):
        nic = VirtioNic("eth0", mac(5), queue_size=1)
        port = VhostUserPort("vhost0", nic)
        assert port.tx_burst([PKT, PKT], pmd) == 1
        assert port.tx_dropped == 1
