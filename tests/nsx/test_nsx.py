import pytest

from repro.hosts.host import Host
from repro.net.addresses import int_to_ip, ip_to_int
from repro.nsx.agent import NsxAgent
from repro.nsx.ruleset import TARGET_RULES, collect_stats
from repro.nsx.topology import build_topology
from repro.ovs.emc import ExactMatchCache
from repro.sim.cpu import CpuCategory, ExecContext


class TestTopology:
    def test_table3_scale(self):
        topo = build_topology()
        assert topo.n_vms == 15
        assert len(topo.vifs) == 30  # two interfaces per VM
        assert len(topo.vteps) == 291

    def test_deterministic(self):
        a, b = build_topology(), build_topology()
        assert a.vifs == b.vifs
        assert a.vteps == b.vteps
        assert a.remote_macs == b.remote_macs

    def test_vif_ips_in_switch_subnet(self):
        topo = build_topology()
        for vif in topo.vifs:
            subnet = topo.subnets[vif.logical_switch]
            assert vif.ip & 0xFFFFFF00 == subnet

    def test_vtep_ips_unique(self):
        topo = build_topology()
        ips = [v.ip for v in topo.vteps]
        assert len(set(ips)) == len(ips)


@pytest.fixture(scope="module")
def deployed():
    """A full NSX deployment on the userspace datapath (scaled rule count
    for test speed; the benchmark uses the full 103,302)."""
    host = Host("hv1", n_cpus=16)
    host.kernel.init_ns  # touch
    nic = host.add_nic("ens1")
    host.kernel.init_ns.add_address("ens1", "192.168.1.1", 16)
    vs = host.install_ovs("netdev")
    vs.add_bridge(NsxAgent.INTEGRATION_BRIDGE)
    uplink, uplink_adapter = vs.add_sim_port(NsxAgent.INTEGRATION_BRIDGE, "up0")
    vs.dpif_netdev.ports[uplink.dp_port_no].device = nic
    agent = NsxAgent(vs)
    vif_ports = {}
    adapters = {}
    for vif in agent.topo.vifs[:4]:
        port, adapter = vs.add_sim_port(
            NsxAgent.INTEGRATION_BRIDGE, f"vif{vif.vif_id}")
        vif_ports[vif.vif_id] = port
        adapters[vif.vif_id] = adapter
    stats = agent.deploy(uplink, vif_ports, target_rules=9_000)
    return host, vs, agent, uplink_adapter, adapters, stats


class TestDeployment:
    def test_tunnel_count(self, deployed):
        _host, vs, agent, _up, _ad, stats = deployed
        assert stats.n_tunnels == 291
        bridge = vs.bridge("br-int")
        assert sum(1 for p in bridge.ports.values()
                   if p.kind == "tunnel") == 291

    def test_table_count_is_40(self, deployed):
        _host, _vs, _agent, _up, _ad, stats = deployed
        assert stats.n_tables == 40

    def test_match_fields_is_31(self, deployed):
        _host, _vs, _agent, _up, _ad, stats = deployed
        assert stats.n_match_fields == 31

    def test_rule_count_exact(self, deployed):
        _host, _vs, _agent, _up, _ad, stats = deployed
        assert stats.n_rules == 9_000

    def test_full_scale_constant(self):
        assert TARGET_RULES == 103_302


class TestDataplaneThroughNsxPipeline:
    def _vif(self, agent, vif_id):
        return next(v for v in agent.topo.vifs if v.vif_id == vif_id)

    def test_vif_to_vif_same_switch(self, deployed):
        host, vs, agent, _up, adapters, _stats = deployed
        # Find two deployed VIFs on the same logical switch.
        vifs = [self._vif(agent, vid) for vid in adapters]
        pairs = [
            (a, b) for a in vifs for b in vifs
            if a is not b and a.logical_switch == b.logical_switch
        ]
        src, dst = pairs[0]
        from repro.net.builder import make_udp_packet

        pkt = make_udp_packet(src.mac, dst.mac, src.ip, dst.ip, 1000, 2000)
        ctx = ExecContext(host.cpu, 1, CpuCategory.USER)
        emc = ExactMatchCache()
        port_no = vs.dpif_netdev.port_no(f"vif{src.vif_id}")
        vs.dpif_netdev.process_batch([pkt], port_no, ctx, emc)
        out = adapters[dst.vif_id].take_transmitted()
        assert len(out) == 1
        # The DFW committed a connection in the switch's zone.
        zones = {c.zone for c in vs.dpif_netdev.conntrack.connections()}
        assert (100 + src.logical_switch) in zones
        # Two datapath passes: before and after conntrack (§5.1).
        assert vs.dpif_netdev.stats.passes >= 2

    def test_vif_to_remote_mac_encapsulates(self, deployed):
        host, vs, agent, uplink_adapter, adapters, _stats = deployed
        vif_id = next(iter(adapters))
        src = self._vif(agent, vif_id)
        remote = next(rm for rm in agent.topo.remote_macs
                      if rm.logical_switch == src.logical_switch)
        from repro.net.builder import make_udp_packet
        from repro.net.tunnel import decapsulate

        pkt = make_udp_packet(src.mac, remote.mac, src.ip,
                              src.ip + 100, 1000, 2000)
        ctx = ExecContext(host.cpu, 2, CpuCategory.USER)
        emc = ExactMatchCache()
        port_no = vs.dpif_netdev.port_no(f"vif{src.vif_id}")
        uplink_adapter.take_transmitted()
        vs.dpif_netdev.process_batch([pkt], port_no, ctx, emc)
        out = uplink_adapter.take_transmitted()
        assert len(out) == 1
        ttype, vni, outer_src, outer_dst, inner = decapsulate(out[0].data)
        assert ttype == "geneve"
        vtep = agent.topo.vteps[remote.vtep_index]
        assert outer_dst == vtep.ip
        assert vni == vtep.vni
        assert inner == pkt.data

    def test_spoofed_source_dropped(self, deployed):
        host, vs, agent, _up, adapters, _stats = deployed
        vif_id = next(iter(adapters))
        src = self._vif(agent, vif_id)
        from repro.net.builder import make_udp_packet
        from repro.net.addresses import MacAddress

        spoofed = make_udp_packet(MacAddress.local(0xBAD), src.mac,
                                  "1.2.3.4", int_to_ip(src.ip))
        ctx = ExecContext(host.cpu, 3, CpuCategory.USER)
        emc = ExactMatchCache()
        port_no = vs.dpif_netdev.port_no(f"vif{src.vif_id}")
        dropped_before = vs.dpif_netdev.stats.dropped
        vs.dpif_netdev.process_batch([spoofed], port_no, ctx, emc)
        assert vs.dpif_netdev.stats.dropped == dropped_before + 1

    def test_inbound_tunnel_to_vif(self, deployed):
        host, vs, agent, _up, adapters, _stats = deployed
        vif_id = next(iter(adapters))
        dst = self._vif(agent, vif_id)
        vtep = agent.topo.vteps[0]
        from repro.net.addresses import MacAddress
        from repro.net.builder import make_udp_packet
        from repro.net.tunnel import TunnelConfig, encapsulate
        from repro.net.packet import Packet

        inner = make_udp_packet(MacAddress.local(0x77), dst.mac,
                                int_to_ip(dst.ip ^ 0x40), int_to_ip(dst.ip),
                                53, 53)
        cfg = TunnelConfig(
            tunnel_type="geneve",
            local_ip=vtep.ip,
            remote_ip=ip_to_int("192.168.1.1"),
            vni=5000 + dst.logical_switch,
            local_mac=MacAddress.local(0x88),
            remote_mac=host.nics["ens1"].mac,
        )
        outer = Packet(encapsulate(cfg, inner.data))
        ctx = ExecContext(host.cpu, 4, CpuCategory.USER)
        emc = ExactMatchCache()
        uplink_no = vs.dpif_netdev.port_no("up0")
        adapters[vif_id].take_transmitted()
        vs.dpif_netdev.process_batch([outer], uplink_no, ctx, emc)
        out = adapters[vif_id].take_transmitted()
        assert len(out) == 1
        assert out[0].data == inner.data
