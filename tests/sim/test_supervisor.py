"""Supervisor unit behaviour: detection math, backoff, phases, passivity.

World-level behaviour (packet loss through a crash, per-datapath
recovery divergence) lives in
``tests/integration/test_upgrade_experiment.py``; these tests pin the
watchdog mechanics in isolation.
"""

import pytest

from repro.hosts.host import Host
from repro.sim import faults, trace
from repro.sim.clock import MSEC
from repro.sim.costs import DEFAULT_COSTS
from repro.sim.faults import FaultPlan, FaultRule
from repro.sim.supervisor import (
    MAX_RETRIES,
    Supervisor,
    SupervisorConfig,
)


def _netdev_world():
    host = Host("sup", n_cpus=4)
    vs = host.install_ovs("netdev")
    vs.add_bridge("br0")
    vs.add_sim_port("br0", "p1")
    vs.add_sim_port("br0", "p2")
    return host, vs


def _supervisor(host, vs, **cfg):
    config = SupervisorConfig(**cfg) if cfg else None
    return Supervisor(host.user_ctx(3), host.clock, vs=vs, config=config)


# ----------------------------------------------------------------------
# Heartbeat detection.
# ----------------------------------------------------------------------
def test_detection_is_miss_threshold_probes_after_the_crash():
    host, vs = _netdev_world()
    sup = _supervisor(host, vs)  # heartbeat 10 ms, 3 misses
    sup.crash()
    sup.finish()
    rec = sup.history[0]
    # Crash at t=0: first missed probe at 10 ms, third at 30 ms.
    assert rec.detected_at_ns == 3 * 10 * MSEC


def test_detection_snaps_to_the_absolute_probe_schedule():
    host, vs = _netdev_world()
    sup = _supervisor(host, vs)
    host.clock.advance(15 * MSEC)  # crash mid-interval
    sup.crash()
    sup.finish()
    rec = sup.history[0]
    # Probes tick at 10/20/30/40 ms; misses at 20, 30, 40.
    assert rec.detected_at_ns == 40 * MSEC
    assert rec.crashed_at_ns == 15 * MSEC


def test_detection_charges_the_missed_probes():
    host, vs = _netdev_world()
    with trace.recording() as rec:
        sup = _supervisor(host, vs)
        sup.crash()
        sup.finish()
    count, ns = rec.spans["supervisor.detect"]
    assert count == 1
    assert ns == pytest.approx(3 * DEFAULT_COSTS.heartbeat_probe_ns)


# ----------------------------------------------------------------------
# Backoff schedule.
# ----------------------------------------------------------------------
def test_backoff_is_free_then_doubles_then_resets():
    host, vs = _netdev_world()
    sup = _supervisor(host, vs)
    backoffs = []
    for _ in range(4):  # immediate crash loop: no stable uptime between
        sup.crash()
        sup.finish()
        backoffs.append(sup.history[-1].backoff_ns)
    assert backoffs == [0.0, 100 * MSEC, 200 * MSEC, 400 * MSEC]
    # A stable-uptime stretch earns the counter back.
    host.clock.advance(2_000 * MSEC)
    sup.crash()
    sup.finish()
    assert sup.history[-1].backoff_ns == 0.0
    assert sup.consecutive_crashes == 1


def test_backoff_is_capped():
    host, vs = _netdev_world()
    sup = _supervisor(host, vs, backoff_cap_ns=250 * MSEC)
    for _ in range(5):
        sup.crash()
        sup.finish()
    assert sup.history[-1].backoff_ns == 250 * MSEC


def test_backoff_is_waited_not_charged():
    host, vs = _netdev_world()
    with trace.recording() as rec:
        sup = _supervisor(host, vs)
        sup.crash()
        sup.finish()
        sup.crash()  # second crash: 100 ms backoff
        sup.finish()
    assert "supervisor.backoff" in rec.waits
    assert "supervisor.backoff" not in rec.spans
    assert rec.waits["supervisor.backoff"][1] == pytest.approx(100 * MSEC)


# ----------------------------------------------------------------------
# Phase scheduling against the experiment's clock.
# ----------------------------------------------------------------------
def test_poll_executes_phases_only_as_their_end_times_pass():
    host, vs = _netdev_world()
    with trace.recording() as rec:
        sup = _supervisor(host, vs)
        sup.crash()
        sup.poll()
        assert "supervisor.detect" not in rec.spans  # nothing ended yet
        host.clock.advance_to(35 * MSEC)  # past detect (30), before exec
        sup.poll()
        assert "supervisor.detect" in rec.spans
        assert "supervisor.exec" not in rec.spans
        assert not sup.up
        host.clock.advance_to(2_000 * MSEC)
        sup.poll()
    assert sup.up
    assert "supervisor.exec" in rec.spans
    assert "supervisor.ovsdb" in rec.spans


def test_finish_advances_the_clock_to_the_recovery_end():
    host, vs = _netdev_world()
    sup = _supervisor(host, vs)
    sup.crash()
    sup.finish()
    assert sup.up
    assert host.clock.now >= sup.history[0].recovered_at_ns
    # Restart bookkeeping is truthful on both sides.
    assert sup.restarts == 1
    assert vs.restarts == 1
    assert sup.history[0].downtime_ns == (
        sup.history[0].recovered_at_ns - sup.history[0].crashed_at_ns)


def test_recovery_reattaches_the_upcall_path():
    host, vs = _netdev_world()
    sup = _supervisor(host, vs)
    assert vs.dpif_netdev.upcall_fn is not None
    sup.crash()
    assert vs.dpif_netdev.upcall_fn is None
    sup.finish()
    assert vs.dpif_netdev.upcall_fn is not None


def test_crash_while_down_is_rejected():
    host, vs = _netdev_world()
    sup = _supervisor(host, vs)
    sup.crash()
    with pytest.raises(RuntimeError):
        sup.crash()
    sup.finish()


# ----------------------------------------------------------------------
# Fault-stretched retries.
# ----------------------------------------------------------------------
def test_ovsdb_disconnect_faults_stretch_recovery_up_to_the_cap():
    host, vs = _netdev_world()
    plan = FaultPlan(seed=0, rules=[
        FaultRule("ovsdb.disconnect", rate=1.0)])
    with faults.injecting(plan):
        sup = _supervisor(host, vs)
        sup.crash()
        sup.finish()
    rec = sup.history[0]
    assert rec.ovsdb_retries == MAX_RETRIES
    assert plan.fired["ovsdb.disconnect"] == MAX_RETRIES


def test_netlink_enobufs_faults_redump_the_kernel_ports():
    host = Host("sup-k", n_cpus=4)
    vs = host.install_ovs("system")
    vs.add_bridge("br0")  # one internal kernel port
    plan = FaultPlan(seed=0, rules=[
        FaultRule("netlink.enobufs", rate=1.0)])
    with faults.injecting(plan), trace.recording() as rec:
        sup = Supervisor(host.user_ctx(3), host.clock, vs=vs)
        sup.crash()
        sup.finish()
    record = sup.history[0]
    assert record.netlink_redumps == MAX_RETRIES
    # (redumps + 1) full dumps of the one port were charged.
    _count, ns = rec.spans["netlink_port_dump"]
    assert ns == pytest.approx(
        (MAX_RETRIES + 1) * DEFAULT_COSTS.netlink_port_dump_ns)


def test_maybe_crash_consults_the_plan_once_per_call():
    host, vs = _netdev_world()
    plan = FaultPlan(seed=0, rules=[
        FaultRule("vswitchd.crash", nth=3, max_fires=1)])
    with faults.injecting(plan):
        sup = _supervisor(host, vs)
        assert not sup.maybe_crash()
        assert not sup.maybe_crash()
        assert sup.maybe_crash()
        assert not sup.up
        # Dead daemons do not crash again (and consume no events).
        assert not sup.maybe_crash()
        assert plan.events["vswitchd.crash"] == 3
        sup.finish()


def test_maybe_crash_without_a_plan_is_inert():
    host, vs = _netdev_world()
    sup = _supervisor(host, vs)
    assert not sup.maybe_crash()
    assert sup.up and sup.restarts == 0


# ----------------------------------------------------------------------
# Zero-overhead-off: a supervisor that never fires changes nothing.
# ----------------------------------------------------------------------
def _charged_world_ledger(with_supervisor: bool) -> str:
    from repro.ovs.pmd import PmdThread
    from tests.ovs.conftest import udp_pkt

    host, vs = _netdev_world()
    pmd = PmdThread(vs.dpif_netdev, host.cpu, core=1)
    p1 = vs.dpif_netdev.ports[vs.dpif_netdev.port_no("p1")]
    pmd.add_rxq(p1, 0)
    plan = FaultPlan(seed=9, rules=[
        FaultRule("vswitchd.crash", rate=0.0)])  # inert rule
    with faults.injecting(plan), trace.recording() as rec:
        sup = None
        if with_supervisor:
            sup = Supervisor(host.user_ctx(3), host.clock, vs=vs,
                             pmds=[pmd])
        for _ in range(4):
            p1.adapter.inject([udp_pkt() for _ in range(8)])
            if sup is not None:
                assert not sup.maybe_crash()
            pmd.run_until_idle()
        return rec.ledger()


def test_inert_supervisor_leaves_the_ledger_byte_identical():
    assert _charged_world_ledger(True) == _charged_world_ledger(False)


# ----------------------------------------------------------------------
# Daemon-less supervision (the eBPF flavor).
# ----------------------------------------------------------------------
def test_vs_none_recovery_is_detect_backoff_exec_only():
    host = Host("sup-e", n_cpus=2)
    sup = Supervisor(host.user_ctx(1), host.clock, vs=None)
    sup.crash("vswitchd.crash")
    sup.finish()
    rec = sup.history[0]
    assert set(rec.phase_ns) == {"detect", "exec"}
    assert rec.downtime_ns == pytest.approx(
        3 * 10 * MSEC + DEFAULT_COSTS.exec_restart_ns)


# ----------------------------------------------------------------------
# Trace counters feed coverage/show truthfully.
# ----------------------------------------------------------------------
def test_crash_and_restart_counters_are_counted():
    host, vs = _netdev_world()
    with trace.recording() as rec:
        sup = _supervisor(host, vs)
        sup.crash()
        sup.finish()
        sup.crash()
        sup.finish()
    assert rec.counters["supervisor.crashes"] == 2
    assert rec.counters["supervisor.restarts"] == 2
    assert rec.counters["dpif.cold_start"] == 2
