"""The trace ledger: spans, counters, nesting, conservation, overhead."""

import tracemalloc

import pytest

from repro.sim import trace
from repro.sim.cpu import CpuCategory, CpuModel, ExecContext
from repro.sim.trace import TraceRecorder


@pytest.fixture
def world():
    cpu = CpuModel(2)
    ctx = ExecContext(cpu, 0, CpuCategory.USER)
    return cpu, ctx


# ----------------------------------------------------------------------
# Basic span / counter recording.
# ----------------------------------------------------------------------
def test_spans_aggregate_per_stage(world):
    _cpu, ctx = world
    with trace.recording() as rec:
        ctx.charge(100.0, label="parse")
        ctx.charge(50.0, label="parse")
        ctx.charge(7.0, label="emc")
    assert rec.span_count("parse") == 2
    assert rec.span_ns("parse") == 150.0
    assert rec.span_ns("emc") == 7.0
    assert rec.total_ns == 157.0


def test_counters_aggregate(world):
    with trace.recording() as rec:
        trace.count("emc.hit")
        trace.count("emc.hit")
        trace.count("bytes", 1500)
    assert rec.counter("emc.hit") == 2
    assert rec.counter("bytes") == 1500
    assert rec.counter("never") == 0


def test_waits_are_separate_from_spans(world):
    _cpu, ctx = world
    with trace.recording() as rec:
        ctx.charge(100.0, label="work")
        ctx.wait(1_000.0, label="irq_wakeup")
    assert rec.total_ns == 100.0
    assert rec.total_wait_ns == 1_000.0
    assert "irq_wakeup" not in rec.spans
    assert rec.conserved()  # waits never unbalance the CPU ledger


# ----------------------------------------------------------------------
# Nested spans.
# ----------------------------------------------------------------------
def test_nested_spans_fold_inclusive_totals(world):
    _cpu, ctx = world
    with trace.recording() as rec:
        with rec.span("upcall"):
            ctx.charge(30.0, label="classifier")
            with rec.span("xlate"):
                ctx.charge(12.0, label="actions")
        ctx.charge(5.0, label="emc")
    assert rec.span_totals["upcall"] == [1, 42.0]
    assert rec.span_totals["upcall/xlate"] == [1, 12.0]
    # The flat ledger is unaffected: no double counting.
    assert rec.total_ns == 47.0
    assert rec.conserved()


def test_module_level_span_passthrough_when_disabled():
    assert trace.ACTIVE is None
    with trace.span("anything"):
        pass  # must not raise, must not record


# ----------------------------------------------------------------------
# Attach / detach discipline.
# ----------------------------------------------------------------------
def test_double_attach_is_an_error():
    with trace.recording():
        with pytest.raises(RuntimeError):
            trace.attach(TraceRecorder())
    assert trace.ACTIVE is None


def test_recording_detaches_on_exception(world):
    _cpu, ctx = world
    with pytest.raises(ValueError):
        with trace.recording():
            raise ValueError("boom")
    assert trace.ACTIVE is None


def test_reset_clears_everything(world):
    _cpu, ctx = world
    with trace.recording() as rec:
        ctx.charge(10.0, label="a")
        trace.count("x")
        with rec.span("s"):
            ctx.charge(1.0, label="b")
    rec.reset()
    assert rec.total_ns == 0.0
    assert not rec.counters and not rec.spans and not rec.span_totals
    assert rec.cpu_charged_ns == 0.0


# ----------------------------------------------------------------------
# Conservation invariant.
# ----------------------------------------------------------------------
def test_conservation_holds_for_context_charges(world):
    _cpu, ctx = world
    with trace.recording() as rec:
        for i in range(100):
            ctx.charge(float(i), label=f"stage{i % 5}")
    assert rec.conserved()
    assert rec.total_ns == rec.cpu_charged_ns


def test_conservation_catches_funnel_bypass(world):
    cpu, ctx = world
    with trace.recording() as rec:
        ctx.charge(100.0, label="good")
        # A direct CpuModel charge bypasses the labelled funnel: the
        # CPU-side tally sees it, the span ledger does not.
        cpu.charge(0, CpuCategory.USER, 50.0)
    assert not rec.conserved()
    assert rec.cpu_charged_ns == 150.0
    assert rec.total_ns == 100.0


# ----------------------------------------------------------------------
# Deterministic ledger.
# ----------------------------------------------------------------------
def test_ledger_is_deterministic(world):
    def run() -> str:
        cpu = CpuModel(2)
        ctx = ExecContext(cpu, 0, CpuCategory.USER)
        with trace.recording() as rec:
            ctx.charge(3.7, label="b")
            ctx.charge(1.1, label="a")
            trace.count("z")
            ctx.wait(4.2, label="w")
            with rec.span("outer"):
                ctx.charge(0.3, label="a")
        return rec.ledger()

    first, second = run(), run()
    assert first == second
    assert "span a count=2" in first
    assert "counter z 1" in first
    assert "cpu_charged_ns=" in first


def test_render_mentions_every_stage(world):
    _cpu, ctx = world
    with trace.recording() as rec:
        ctx.charge(90.0, label="big")
        ctx.charge(10.0, label="small")
    table = rec.render()
    assert "big" in table and "small" in table
    assert "90.0%" in table


# ----------------------------------------------------------------------
# Disabled-path overhead: no allocation attributable to the trace layer.
# ----------------------------------------------------------------------
def test_disabled_recorder_allocates_nothing(world):
    _cpu, ctx = world
    assert trace.ACTIVE is None
    for _ in range(16):  # warm any lazy caches outside the window
        ctx.charge(1.0, label="hot")
        trace.count("warm")
    tracemalloc.start()
    try:
        for _ in range(2_000):
            ctx.charge(1.0, label="hot")
        snapshot = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    stats = snapshot.filter_traces(
        [tracemalloc.Filter(True, trace.__file__)]
    ).statistics("lineno")
    assert not stats, f"trace layer allocated while disabled: {stats}"
