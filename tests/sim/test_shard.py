"""Unit tests for :mod:`repro.sim.shard` (DESIGN §17).

The runner functions live at module level so every start method —
including ``spawn``, which imports this module fresh in the child — can
resolve them by name.
"""

import multiprocessing as mp

import pytest

from repro.ovs.netdevs import RingPortAdapter
from repro.net.packet import Packet
from repro.sim import faults, profile, trace
from repro.sim.costs import DEFAULT_COSTS
from repro.sim.cpu import CpuCategory, CpuModel, ExecContext
from repro.sim.profile import collapse
from repro.sim.shard import (
    RunLog,
    ShardError,
    ShardPlan,
    ShardRecorder,
    TraceSnapshot,
    Unit,
    partition_round_robin,
    run_pipeline,
    run_units,
    PipelineSpec,
)


# ----------------------------------------------------------------------
# Module-level unit runners (spawn-safe by construction).
# ----------------------------------------------------------------------
def unit_square(x: int) -> int:
    return x * x


def unit_trace(seed: int, n: int = 40) -> float:
    """A deterministic charge stream with order-sensitive floats."""
    rec = trace.ACTIVE
    total = 0.0
    for i in range(n):
        v = ((seed + 1) * 1.0000001 + i * 0.3333333) % 7.7
        total += v
        if rec is None:
            continue
        rec.record("work", v)
        rec.record("tick", 0.1)  # repeated non-dyadic: collapse-sensitive
        rec.record_n("burst", 0.3, 3)
        if i % 5 == 0:
            rec.record_wait("wait", v / 2)
        rec.note_cpu(v)
        trace.count("unit.events")
        with rec.span("outer"):
            rec.record("inner", v * 0.5)
        rec.note_batch("rx", 1 + (i % 4))
    return total


def unit_faulty(n: int) -> int:
    """Counts fault decisions under the ambient (unit-scoped) plan."""
    plan = faults.ACTIVE
    assert plan is not None, "unit plan was not installed"
    fired = 0
    for _ in range(n):
        if plan.should_fire("afxdp.tx_kick_eagain"):
            fired += 1
    return fired


def _units(n, runner="tests.sim.test_shard:unit_square", **extra):
    return [Unit(key=f"u{i}", runner=runner,
                 params=dict(x=i) if "square" in runner
                 else dict(seed=i), weight=1.0 + (i % 3), **extra)
            for i in range(n)]


def _observe(units, shards, **kw):
    with profile.profiling() as rec:
        run = run_units(units, shards=shards, **kw)
    return run.values, rec.ledger(), dict(rec.counters), \
        collapse(rec.profiler.root), {k: dict(v)
                                      for k, v in rec.batch_sizes.items()}


# ----------------------------------------------------------------------
# RunLog / snapshot replay.
# ----------------------------------------------------------------------
def test_runlog_compresses_consecutive_equal_values():
    log = RunLog()
    for _ in range(5):
        log.add("a", 2.0)
    log.add("a", 3.0)
    log.add_n("a", 3.0, 7)
    log.add_n("b", 1.5, 2)
    assert log.runs == {"a": [2.0, 5, 3.0, 8], "b": [1.5, 2]}


def test_snapshot_replay_is_bit_identical_not_just_close():
    # 0.1 added 10 times != 1.0: replay must reproduce the exact fold.
    src = ShardRecorder()
    for _ in range(10):
        src.record("s", 0.1)
    dst = trace.TraceRecorder()
    src.snapshot().replay_into(dst)
    assert dst.spans["s"][1] == src.spans["s"][1]
    assert dst.spans["s"][1] != 1.0  # the exact ulps survive

    collapsed = trace.TraceRecorder()
    src.snapshot().replay_into(collapsed, collapse=True)
    assert collapsed.spans["s"][1] == 10 * 0.1  # the mutation differs
    assert collapsed.spans["s"][1] != dst.spans["s"][1]


def test_replay_refuses_open_spans_and_open_profiler_frames():
    snap = TraceSnapshot(spans={"s": [1.0, 1]}, waits={}, nested={},
                         cpu=[], counters={}, batch_sizes={})
    rec = trace.TraceRecorder()
    with rec.span("open"):
        with pytest.raises(ShardError):
            snap.replay_into(rec)

    psnap = TraceSnapshot(spans={}, waits={}, nested={}, cpu=[],
                          counters={}, batch_sizes={},
                          prof_enters={("pmd",): 1})
    prec = trace.TraceRecorder()
    prec.profiler = profile.Profiler()
    prec.profiler.enter("open")
    with pytest.raises(ShardError):
        psnap.replay_into(prec)


# ----------------------------------------------------------------------
# Placement.
# ----------------------------------------------------------------------
def test_plan_is_a_pure_function_of_units_and_shard_count():
    units = _units(7)
    assert ShardPlan.build(units, 3).shards == \
        ShardPlan.build(units, 3).shards


def test_plan_lpt_puts_the_heaviest_unit_alone():
    units = [Unit(key="heavy", runner="x:y", weight=10.0),
             Unit(key="a", runner="x:y", weight=1.0),
             Unit(key="b", runner="x:y", weight=1.0)]
    plan = ShardPlan.build(units, 2)
    assert plan.shards == [[0], [1, 2]]
    assert plan.shard_of(0) == 0 and plan.shard_of(2) == 1


def test_plan_buckets_keep_serial_order():
    plan = ShardPlan.build(_units(9), 2)
    for bucket in plan.shards:
        assert bucket == sorted(bucket)


def test_from_partition_validates():
    plan = ShardPlan.from_partition([1, 0, 1], 2)
    assert plan.shards == [[1], [0, 2]]
    with pytest.raises(ShardError):
        ShardPlan.from_partition([0, 2], 2)
    with pytest.raises(ShardError):
        ShardPlan.from_partition([], 0)
    with pytest.raises(ShardError):
        run_units(_units(3), shards=2, placement=[0, 1])  # wrong length


def test_partition_round_robin():
    assert partition_round_robin(5, 2) == [0, 1, 0, 1, 0]
    with pytest.raises(ShardError):
        partition_round_robin(3, 0)


# ----------------------------------------------------------------------
# run_units: degenerate, sharded, guards.
# ----------------------------------------------------------------------
def test_degenerate_run_is_inline_and_ordered():
    run = run_units(_units(4), shards=1)
    assert run.values == [0, 1, 4, 9]
    assert run.report.degenerate and run.report.n_shards == 1
    assert run.report.barriers == 0
    assert run.by_key(_units(4)) == {"u0": 0, "u1": 1, "u2": 4, "u3": 9}


def test_sharded_values_keep_serial_order():
    run = run_units(_units(5), shards=2)
    assert run.values == [0, 1, 4, 9, 16]
    assert run.report.n_shards == 2
    assert not run.report.degenerate
    assert run.report.barriers == 1
    assert run.report.payload_bytes == 0  # no recorder: no snapshots


def test_never_opens_more_shards_than_units():
    run = run_units(_units(2), shards=8)
    assert run.report.n_shards == 2


def test_sharded_observables_byte_identical_to_serial():
    units = _units(5, runner="tests.sim.test_shard:unit_trace")
    serial = _observe(units, shards=1)
    for shards in (2, 3):
        assert _observe(units, shards=shards) == serial


def test_explicit_placement_never_changes_observables():
    units = _units(4, runner="tests.sim.test_shard:unit_trace")
    serial = _observe(units, shards=1)
    for placement in ([0, 1, 2, 0], [2, 2, 2, 2], [1, 0, 1, 0]):
        assert _observe(units, shards=3, placement=placement) == serial


def test_merge_mutations_change_the_ledger():
    units = _units(4, runner="tests.sim.test_shard:unit_trace")
    serial = _observe(units, shards=1)
    for mutation in ("reorder", "collapse"):
        mutated = _observe(units, shards=2, _mutate_merge=mutation)
        assert mutated[1] != serial[1], mutation  # ledger bytes differ


def test_unit_scoped_fault_plans_are_schedule_independent():
    units = [Unit(key=i, runner="tests.sim.test_shard:unit_faulty",
                  params=dict(n=200),
                  plan=dict(seed=7 + i, rules=(
                      faults.FaultRule("afxdp.tx_kick_eagain", rate=0.25),
                  )))
             for i in range(4)]
    serial = run_units(units, shards=1).values
    assert sum(serial) > 0  # the plan actually fires
    assert run_units(units, shards=2).values == serial
    assert run_units(units, shards=3,
                     placement=[2, 0, 2, 1]).values == serial


def test_ambient_fault_plan_is_refused_when_sharded():
    plan = faults.FaultPlan(seed=1, rules=(
        faults.FaultRule("afxdp.tx_kick_eagain", rate=0.5),))
    with faults.injecting(plan):
        with pytest.raises(ShardError, match="ambient FaultPlan"):
            run_units(_units(2), shards=2)
        # Unit plans cannot nest inside it either, even inline.
        with pytest.raises(ShardError, match="cannot nest"):
            run_units(_units(2, plan=dict(seed=2)), shards=1)


def test_attached_metrics_sampler_is_refused_when_sharded():
    rec = trace.TraceRecorder()
    rec.sampler = object()
    with trace.recording(rec):
        with pytest.raises(ShardError, match="MetricsSampler"):
            run_units(_units(2), shards=2)


def test_bad_runner_specs_raise_shard_errors():
    with pytest.raises(ShardError, match="not 'module:function'"):
        run_units([Unit(key="k", runner="no_colon")], shards=1)
    with pytest.raises(ShardError, match="not found"):
        run_units([Unit(key="k",
                        runner="tests.sim.test_shard:missing")], shards=1)


def test_pipeline_sharding_refuses_ambient_tracing():
    with trace.recording():
        with pytest.raises(ShardError, match="ambient trace"):
            run_pipeline(PipelineSpec(n_stages=2), n_packets=32, shards=2,
                         partition=[0, 1])


# ----------------------------------------------------------------------
# Start methods (spawn-safety satellite).
# ----------------------------------------------------------------------
@pytest.mark.parametrize("method", mp.get_all_start_methods())
def test_every_start_method_merges_byte_identically(method):
    units = _units(3, runner="tests.sim.test_shard:unit_trace")
    serial = _observe(units, shards=1)
    sharded = _observe(units, shards=2, start_method=method)
    assert sharded == serial


# ----------------------------------------------------------------------
# RingPortAdapter: the cross-shard TX handoff queue.
# ----------------------------------------------------------------------
def _ctx():
    return ExecContext(CpuModel(1), 0, CpuCategory.USER, name="t")


def test_ring_charges_per_burst_plus_per_frame():
    ring = RingPortAdapter(name="r")
    tx, rx = _ctx(), _ctx()
    pkts = [Packet(bytes(60)) for _ in range(4)]
    assert ring.tx_burst(pkts, tx) == 4
    assert tx.local_time_ns == \
        DEFAULT_COSTS.ring_batch_ns + 4 * DEFAULT_COSTS.ring_op_ns
    got = ring.rx_burst(rx, batch=32)
    assert [p.data for p in got] == [p.data for p in pkts]
    assert rx.local_time_ns == tx.local_time_ns
    assert ring.enqueued == ring.dequeued == 4


def test_ring_empty_rx_is_free_and_capacity_drops_are_counted():
    ring = RingPortAdapter(name="r", capacity=3)
    ctx = _ctx()
    assert ring.rx_burst(ctx) == []
    assert ctx.local_time_ns == 0.0
    sent = ring.tx_burst([Packet(bytes(60)) for _ in range(5)], ctx)
    assert sent == 3
    assert ring.dropped_ring_full == 2
    assert ring.peak_depth == 3


def test_ring_handoff_take_all_and_feed_are_uncharged():
    ring = RingPortAdapter(name="r")
    ctx = _ctx()
    ring.tx_burst([Packet(bytes(60)) for _ in range(3)], ctx)
    charged = ctx.local_time_ns
    assert ring.pending() == 3
    pkts = ring.take_all()
    assert len(pkts) == 3 and ring.pending() == 0
    assert ring.transfers == 1
    other = RingPortAdapter(name="r2")
    other.feed(pkts)
    assert other.pending() == 3 and other.peak_depth == 3
    assert ctx.local_time_ns == charged  # no coordinator charges
    assert ring.take_all() == [] and ring.transfers == 1
