import pytest

from repro.sim.cpu import CpuCategory, CpuModel, ExecContext, LatencyTrace


def test_requires_at_least_one_cpu():
    with pytest.raises(ValueError):
        CpuModel(0)


def test_charge_accumulates_per_cpu_and_category():
    cpu = CpuModel(4)
    cpu.charge(0, CpuCategory.USER, 100)
    cpu.charge(0, CpuCategory.USER, 50)
    cpu.charge(1, CpuCategory.SOFTIRQ, 30)
    assert cpu.busy_ns(cpu=0, category=CpuCategory.USER) == 150
    assert cpu.busy_ns(cpu=1) == 30
    assert cpu.busy_ns() == 180
    assert cpu.busy_ns(category=CpuCategory.SOFTIRQ) == 30


def test_negative_charge_rejected():
    cpu = CpuModel(1)
    with pytest.raises(ValueError):
        cpu.charge(0, CpuCategory.USER, -1)


def test_utilisation_in_cpu_units():
    cpu = CpuModel(2)
    cpu.charge(0, CpuCategory.USER, 1_000)
    cpu.charge(1, CpuCategory.SOFTIRQ, 500)
    assert cpu.utilisation(wall_ns=1_000) == pytest.approx(1.5)
    assert cpu.utilisation(1_000, CpuCategory.USER) == pytest.approx(1.0)


def test_utilisation_by_category_folds_poll_idle_into_user():
    cpu = CpuModel(1)
    cpu.charge(0, CpuCategory.USER, 300)
    cpu.charge(0, CpuCategory.POLL_IDLE, 700)
    out = cpu.utilisation_by_category(wall_ns=1_000)
    assert out["user"] == pytest.approx(1.0)
    assert out["total"] == pytest.approx(1.0)
    assert "poll_idle" not in out


def test_exec_context_charges_its_category():
    cpu = CpuModel(2)
    ctx = ExecContext(cpu, cpu=1, category=CpuCategory.SOFTIRQ)
    ctx.charge(250)
    assert cpu.busy_ns(cpu=1, category=CpuCategory.SOFTIRQ) == 250
    assert ctx.local_time_ns == 250


def test_exec_context_category_override():
    cpu = CpuModel(1)
    ctx = ExecContext(cpu, 0, CpuCategory.USER)
    with ctx.as_category(CpuCategory.SYSTEM):
        ctx.charge(100)
    ctx.charge(10)
    assert cpu.busy_ns(category=CpuCategory.SYSTEM) == 100
    assert cpu.busy_ns(category=CpuCategory.USER) == 10


def test_exec_context_rejects_bad_cpu():
    cpu = CpuModel(2)
    with pytest.raises(ValueError):
        ExecContext(cpu, 2, CpuCategory.USER)


def test_latency_trace_collects_components():
    cpu = CpuModel(1)
    ctx = ExecContext(cpu, 0, CpuCategory.USER)
    trace = LatencyTrace()
    with ctx.tracing(trace):
        ctx.charge(100, label="parse")
        ctx.charge(40, label="parse")
        ctx.wait(1_000, label="sleep")
    ctx.charge(5)  # outside the trace
    assert trace.total_ns == 1_140
    assert trace.components == {"parse": 140, "sleep": 1_000}


def test_wait_adds_latency_without_cpu():
    cpu = CpuModel(1)
    ctx = ExecContext(cpu, 0, CpuCategory.USER)
    ctx.wait(500)
    assert cpu.busy_ns() == 0
    assert ctx.local_time_ns == 500


def test_reset_clears_accounting():
    cpu = CpuModel(1)
    cpu.charge(0, CpuCategory.USER, 10)
    cpu.reset()
    assert cpu.busy_ns() == 0
