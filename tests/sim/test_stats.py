import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.stats import (
    Histogram,
    RateEstimator,
    StreamingHistogram,
    effective_parallel_rate,
    line_rate_mpps,
    percentile,
)


def test_percentile_simple():
    data = list(range(1, 101))  # 1..100
    assert percentile(data, 50) == 50
    assert percentile(data, 99) == 99
    assert percentile(data, 100) == 100
    assert percentile(data, 1) == 1


def test_percentile_rejects_empty_and_bad_p():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1], 0)
    with pytest.raises(ValueError):
        percentile([1], 101)


@given(st.lists(st.floats(0, 1e9), min_size=1, max_size=200))
def test_percentile_bounds(samples):
    assert percentile(samples, 100) == max(samples)
    assert min(samples) <= percentile(samples, 50) <= max(samples)


@given(
    st.lists(st.floats(0, 1e6), min_size=1, max_size=100),
    st.floats(0.1, 100),
)
def test_percentile_monotone_in_p(samples, p):
    lower = percentile(samples, max(p / 2, 0.01))
    assert lower <= percentile(samples, p)


def test_histogram_summary():
    h = Histogram()
    h.extend([1.0, 2.0, 3.0, 4.0])
    assert len(h) == 4
    assert h.mean() == 2.5
    assert h.min() == 1.0
    assert h.max() == 4.0
    assert h.percentiles((50, 100)) == {50: 2.0, 100: 4.0}


def test_histogram_empty_mean_raises():
    with pytest.raises(ValueError):
        Histogram().mean()


def test_rate_estimator_mpps():
    # 1000 packets in 100,000 ns -> 10 Mpps.
    r = RateEstimator(packets=1000, busy_ns=100_000)
    assert r.mpps == pytest.approx(10.0)
    assert r.ns_per_packet == pytest.approx(100.0)


def test_rate_estimator_gbps():
    # 125 bytes/ns = 1000 Gbit/s sanity scaling.
    r = RateEstimator(packets=1, busy_ns=1_000, bytes_total=125_000)
    assert r.gbps == pytest.approx(1_000.0)


def test_rate_estimator_zero_work():
    assert RateEstimator(0, 0).mpps == math.inf
    assert RateEstimator(0, 100).ns_per_packet == math.inf


def test_line_rate_matches_paper_25g_numbers():
    # §5.5: 25 Gbps line rate is 33 Mpps at 64 B and 2.1 Mpps at 1518 B.
    assert line_rate_mpps(25, 64) == pytest.approx(37.2, abs=0.1)
    # (37.2 is the theoretical 64B line rate; TRex reported ~33 Mpps as its
    # achieved load.)  1518B:
    assert line_rate_mpps(25, 1518) == pytest.approx(2.03, abs=0.05)


def test_line_rate_10g_64b():
    # The classic 14.88 Mpps figure, quoted in §5.4 ("14 Mpps line rate").
    assert line_rate_mpps(10, 64) == pytest.approx(14.88, abs=0.01)


def test_line_rate_rejects_tiny_frames():
    with pytest.raises(ValueError):
        line_rate_mpps(10, 32)


def test_effective_parallel_rate_caps_at_line():
    assert effective_parallel_rate([5.0, 5.0], line_mpps=7.0) == 7.0
    assert effective_parallel_rate([2.0, 3.0], line_mpps=7.0) == 5.0


# ---------------------------------------------------------------------------
# StreamingHistogram (bounded-memory log-bucketed percentiles).
# ---------------------------------------------------------------------------
def test_streaming_histogram_summary():
    h = StreamingHistogram(rel_error=0.01)
    h.extend([1.0, 2.0, 3.0, 4.0])
    assert len(h) == 4
    assert h.mean() == pytest.approx(2.5)
    assert h.min() == 1.0
    assert h.max() == 4.0
    # Each representative is within the relative-error bound of the
    # exact nearest-rank answer.
    assert h.percentile(50) == pytest.approx(2.0, rel=0.01)
    assert h.percentile(100) == pytest.approx(4.0, rel=0.01)


def test_streaming_histogram_empty_raises():
    h = StreamingHistogram()
    with pytest.raises(ValueError):
        h.mean()
    with pytest.raises(ValueError):
        h.percentile(50)


def test_streaming_histogram_rejects_bad_params():
    with pytest.raises(ValueError):
        StreamingHistogram(rel_error=0.0)
    with pytest.raises(ValueError):
        StreamingHistogram(rel_error=1.5)
    with pytest.raises(ValueError):
        StreamingHistogram(max_buckets=1)


def test_streaming_histogram_zero_and_negative_bucket():
    h = StreamingHistogram()
    h.extend([0.0, -5.0, 10.0])
    assert len(h) == 3
    # Ranks 1 and 2 fall in the nonpositive bucket, reported as 0.0.
    assert h.percentile(50) == 0.0
    assert h.percentile(100) == pytest.approx(10.0, rel=0.01)


def test_streaming_histogram_bounded_memory():
    """10^6-wide dynamic range in far fewer buckets than samples, and a
    tiny cap still answers (coarser at the low end, where collapse
    merges)."""
    h = StreamingHistogram(rel_error=0.01, max_buckets=64)
    values = [1.0 * (1.013 ** i) for i in range(2000)]  # spans ~x10^11
    h.extend(values)
    assert h.n_buckets <= 64
    assert len(h) == 2000
    # The top of the distribution is untouched by lowest-pair collapse.
    exact = percentile(values, 99)
    assert h.percentile(99) == pytest.approx(exact, rel=0.05)


@given(
    st.lists(st.floats(0.1, 1e9), min_size=1, max_size=300),
    st.sampled_from([50.0, 90.0, 99.0]),
)
def test_streaming_percentile_error_bound(samples, p):
    """The satellite's contract: log-bucketed percentiles stay within
    the configured relative error of the exact nearest-rank
    :func:`percentile` (plus float slack)."""
    rel = 0.01
    h = StreamingHistogram(rel_error=rel)
    h.extend(samples)
    approx = h.percentile(p)
    exact = percentile(samples, p)
    assert abs(approx - exact) <= rel * exact * (1 + 1e-6) + 1e-9


@given(st.lists(st.floats(0.1, 1e9), min_size=1, max_size=300))
def test_streaming_histogram_matches_exact_extremes(samples):
    h = StreamingHistogram(rel_error=0.01)
    h.extend(samples)
    assert h.min() == min(samples)
    assert h.max() == max(samples)
    # Percentiles clamp into the observed range.
    assert h.min() <= h.percentile(50) <= h.max()
