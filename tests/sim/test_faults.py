"""Unit tests for the deterministic fault-injection layer."""

import pytest

from repro.sim import faults, trace
from repro.sim.faults import FAULT_POINTS, FaultPlan, FaultRule


# ----------------------------------------------------------------------
# Rule and plan validation.
# ----------------------------------------------------------------------
def test_unknown_point_rejected_with_known_list():
    with pytest.raises(ValueError) as err:
        FaultRule("afxdp.txkick_eagain")
    assert "unknown fault point" in str(err.value)
    assert "afxdp.tx_kick_eagain" in str(err.value)


@pytest.mark.parametrize("kwargs", [
    {"rate": -0.1},
    {"rate": 1.5},
    {"nth": 0},
    {"max_fires": -1},
])
def test_invalid_rule_parameters_rejected(kwargs):
    with pytest.raises(ValueError):
        FaultRule("afxdp.tx_kick_eagain", **kwargs)


def test_duplicate_rule_rejected():
    rule = FaultRule("afxdp.tx_kick_eagain", rate=0.1)
    with pytest.raises(ValueError, match="duplicate"):
        FaultPlan(rules=[rule, rule])


@pytest.mark.parametrize("kwargs", [
    {"emc_insert_inv_prob": 0},
    {"upcall_queue_cap": -1},
    {"flow_limit": -2},
])
def test_invalid_plan_knobs_rejected(kwargs):
    with pytest.raises(ValueError):
        FaultPlan(**kwargs)


def test_every_registered_point_has_a_description():
    for point, description in FAULT_POINTS.items():
        assert "." in point
        assert len(description) > 20


# ----------------------------------------------------------------------
# Firing semantics.
# ----------------------------------------------------------------------
def test_rate_draws_are_deterministic_per_seed():
    def fires(seed):
        plan = FaultPlan(seed=seed, rules=[
            FaultRule("dp.upcall_overload", rate=0.3)])
        return [plan.should_fire("dp.upcall_overload")
                for _ in range(200)]

    assert fires(7) == fires(7)
    assert fires(7) != fires(8)
    assert any(fires(7)) and not all(fires(7))


def test_nth_fires_exactly_every_nth_event():
    plan = FaultPlan(rules=[FaultRule("afxdp.umem_exhausted", nth=3)])
    pattern = [plan.should_fire("afxdp.umem_exhausted")
               for _ in range(9)]
    assert pattern == [False, False, True] * 3


def test_nth_one_always_fires():
    plan = FaultPlan(rules=[FaultRule("afxdp.zc_fallback", nth=1)])
    assert all(plan.should_fire("afxdp.zc_fallback") for _ in range(5))


def test_max_fires_caps_total():
    plan = FaultPlan(rules=[
        FaultRule("ebpf.map_lookup_fault", nth=1, max_fires=2)])
    results = [plan.should_fire("ebpf.map_lookup_fault")
               for _ in range(5)]
    assert results == [True, True, False, False, False]
    assert plan.fired["ebpf.map_lookup_fault"] == 2
    assert plan.events["ebpf.map_lookup_fault"] == 5


def test_unruled_points_tally_events_but_never_fire_or_draw():
    plan = FaultPlan(rules=[FaultRule("afxdp.tx_kick_eagain", rate=0.5)])
    # Consulting an unruled point must not advance any RNG stream: the
    # ruled point's draw sequence is identical whether or not other
    # points were consulted in between.
    witness = FaultPlan(rules=[FaultRule("afxdp.tx_kick_eagain",
                                         rate=0.5)])
    seq_a = []
    for _ in range(50):
        plan.should_fire("dp.upcall_overload")
        seq_a.append(plan.should_fire("afxdp.tx_kick_eagain"))
    seq_b = [witness.should_fire("afxdp.tx_kick_eagain")
             for _ in range(50)]
    assert seq_a == seq_b
    assert plan.events["dp.upcall_overload"] == 50
    assert "dp.upcall_overload" not in plan.fired


def test_per_point_streams_are_independent():
    solo = FaultPlan(seed=3, rules=[
        FaultRule("afxdp.fill_ring_overrun", rate=0.4)])
    both = FaultPlan(seed=3, rules=[
        FaultRule("afxdp.fill_ring_overrun", rate=0.4),
        FaultRule("dp.upcall_overload", rate=0.4)])
    seq_solo, seq_both = [], []
    for _ in range(100):
        seq_solo.append(solo.should_fire("afxdp.fill_ring_overrun"))
        seq_both.append(both.should_fire("afxdp.fill_ring_overrun"))
        both.should_fire("dp.upcall_overload")
    assert seq_solo == seq_both


def test_fires_bump_trace_counter():
    with trace.recording() as rec:
        plan = FaultPlan(rules=[FaultRule("afxdp.comp_ring_overrun",
                                          nth=2)])
        for _ in range(4):
            plan.should_fire("afxdp.comp_ring_overrun")
    assert rec.counter("fault.afxdp.comp_ring_overrun") == 2


# ----------------------------------------------------------------------
# EMC-insert probability (the storm breaker knob).
# ----------------------------------------------------------------------
def test_default_emc_insert_always_true_without_randomness():
    plan = FaultPlan()
    state = plan._emc_rng.getstate()
    assert all(plan.should_insert_emc() for _ in range(10))
    assert plan._emc_rng.getstate() == state


def test_emc_insert_inv_prob_skips_some_inserts_deterministically():
    def decisions(seed):
        plan = FaultPlan(seed=seed, emc_insert_inv_prob=4)
        return [plan.should_insert_emc() for _ in range(200)]

    assert decisions(1) == decisions(1)
    got = decisions(1)
    assert any(got) and not all(got)
    # With P=4 roughly a quarter insert; allow generous slack.
    assert 20 <= sum(got) <= 90


# ----------------------------------------------------------------------
# Install / uninstall lifecycle.
# ----------------------------------------------------------------------
def test_install_uninstall_roundtrip():
    assert faults.ACTIVE is None
    plan = faults.install(FaultPlan())
    assert faults.active() is plan
    faults.uninstall()
    assert faults.ACTIVE is None


def test_nested_install_is_an_error():
    with faults.injecting():
        with pytest.raises(RuntimeError, match="already installed"):
            faults.install(FaultPlan())
    assert faults.ACTIVE is None


def test_injecting_uninstalls_on_exception():
    with pytest.raises(KeyError):
        with faults.injecting():
            raise KeyError("boom")
    assert faults.ACTIVE is None


# ----------------------------------------------------------------------
# Rendering.
# ----------------------------------------------------------------------
def test_render_shows_rules_and_tallies():
    plan = FaultPlan(seed=5, rules=[
        FaultRule("afxdp.tx_kick_eagain", rate=0.25, max_fires=3)])
    for _ in range(8):
        plan.should_fire("afxdp.tx_kick_eagain")
    out = plan.render()
    assert "seed=5" in out
    assert "afxdp.tx_kick_eagain" in out
    assert "rate=0.25" in out
    assert "max_fires=3" in out
    assert "events:8" in out


def test_render_empty_plan():
    out = FaultPlan().render()
    assert "(no fault rules)" in out
    assert "emc-insert-inv-prob: 1" in out
