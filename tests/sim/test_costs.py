import pytest

from repro.sim.costs import DEFAULT_COSTS, CostModel


def test_default_model_is_frozen():
    import dataclasses

    assert dataclasses.is_dataclass(DEFAULT_COSTS)
    try:
        DEFAULT_COSTS.sendto_ns = 0  # type: ignore[misc]
        raised = False
    except dataclasses.FrozenInstanceError:
        raised = True
    assert raised


def test_sendto_matches_paper_measurement():
    # §3.3: "We measured the cost of this system call as 2 us on average."
    assert DEFAULT_COSTS.sendto_ns == 2_000


def test_spinlock_cheaper_than_mutex():
    # §3.2 O2's whole point.
    assert DEFAULT_COSTS.spinlock_ns < DEFAULT_COSTS.mutex_ns


def test_ebpf_slower_than_native():
    # §2.2.2: sandboxed bytecode runs slower than comparable C.
    assert DEFAULT_COSTS.ebpf_insn_ns > DEFAULT_COSTS.native_op_ns


def test_scaled_returns_modified_copy():
    tweaked = DEFAULT_COSTS.scaled(sendto_ns=123.0)
    assert tweaked.sendto_ns == 123.0
    assert DEFAULT_COSTS.sendto_ns == 2_000
    assert isinstance(tweaked, CostModel)


def test_copy_cost_scales_linearly():
    assert DEFAULT_COSTS.copy_cost(2000) == 2 * DEFAULT_COSTS.copy_cost(1000)
    assert DEFAULT_COSTS.copy_cost(0) == 0


def test_checksum_cost_grows_linearly_with_size():
    # §3.2 O5: "the checksum's cost is proportional to the packet's payload"
    # (plus a small fixed setup cost).
    small = DEFAULT_COSTS.checksum_cost(64)
    big = DEFAULT_COSTS.checksum_cost(1518)
    assert big - small == pytest.approx(
        (1518 - 64) * DEFAULT_COSTS.checksum_per_byte_ns)
    assert big > 10 * small / 2


def test_upcall_dwarfs_fast_path():
    # A kernel-datapath miss crosses into userspace and back; it must be
    # orders of magnitude above a cache hit for the 1000-flow experiments
    # to show the caching cliff.
    assert DEFAULT_COSTS.upcall_ns > 100 * DEFAULT_COSTS.emc_hit_ns
