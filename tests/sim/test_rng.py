import pytest

from repro.sim.rng import lognormal_jitter, make_rng


def test_same_scope_same_stream():
    a = make_rng("fig9", "flows")
    b = make_rng("fig9", "flows")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_different_scopes_diverge():
    a = make_rng("fig9", "flows")
    b = make_rng("fig9", "jitter")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_seed_changes_stream():
    a = make_rng("x", seed=1)
    b = make_rng("x", seed=2)
    assert a.random() != b.random()


def test_lognormal_jitter_positive_and_centered():
    rng = make_rng("jitter-test")
    samples = [lognormal_jitter(rng, 1_000, 0.3) for _ in range(2_000)]
    assert all(s > 0 for s in samples)
    median = sorted(samples)[len(samples) // 2]
    assert 900 < median < 1_100  # median ~ the requested median


def test_lognormal_jitter_rejects_bad_median():
    with pytest.raises(ValueError):
        lognormal_jitter(make_rng("x"), 0, 0.3)
