"""The call-tree profiler and virtual-time metrics sampler."""

import json

import pytest

from repro.sim import profile, trace
from repro.sim.cpu import CpuCategory, CpuModel, ExecContext
from repro.sim.profile import (
    CallNode,
    MetricsSampler,
    Profiler,
    collapse,
    diff_profiles,
    flatten,
    profile_json,
    render_tree,
)
from repro.sim.trace import TraceRecorder


def _ctx(cpu=None):
    cpu = cpu or CpuModel(2)
    return ExecContext(cpu, 0, CpuCategory.USER)


def _drive(rec, ctx):
    """A tiny two-span workload with a shared leaf label."""
    with rec.span("outer"):
        ctx.charge(10.0, label="emc")
        with rec.span("inner"):
            ctx.charge(5.0, label="dpcls")
            ctx.charge(5.0, label="dpcls")
        ctx.charge(2.0, label="emc")
    ctx.charge(3.0, label="stray")


# ---------------------------------------------------------------------------
# Tree construction.
# ---------------------------------------------------------------------------
def test_tree_structure_follows_span_stack():
    with profile.profiling() as rec:
        _drive(rec, _ctx())
    root = rec.profiler.root
    assert set(root.children) == {"outer", "stray"}
    outer = root.children["outer"]
    assert set(outer.children) == {"emc", "inner"}
    inner = outer.children["inner"]
    assert set(inner.children) == {"dpcls"}
    assert inner.children["dpcls"].calls == 2
    assert inner.children["dpcls"].ns == pytest.approx(10.0)
    # The two emc charges folded into one leaf under outer.
    assert outer.children["emc"].calls == 2
    assert outer.children["emc"].ns == pytest.approx(12.0)


def test_inclusive_vs_exclusive():
    with profile.profiling() as rec:
        _drive(rec, _ctx())
    root = rec.profiler.root
    outer = root.children["outer"]
    assert outer.ns == 0.0  # span nodes hold no self time
    assert outer.inclusive_ns() == pytest.approx(22.0)
    assert root.inclusive_ns() == pytest.approx(25.0)


def test_root_inclusive_conserves_against_ledger():
    with profile.profiling() as rec:
        _drive(rec, _ctx())
    root_ns = rec.profiler.root.inclusive_ns()
    assert root_ns == pytest.approx(rec.total_ns, rel=1e-9)
    assert root_ns == pytest.approx(rec.cpu_charged_ns, rel=1e-9)


def test_profiler_only_span_groups_without_ledger_entry():
    with profile.profiling() as rec:
        ctx = _ctx()
        with profile.span("pmd-c0"):
            ctx.charge(7.0, label="emc")
    assert "pmd-c0" in rec.profiler.root.children
    # The profiler-only frame never reaches the recorder's span ledger.
    assert not rec.span_totals
    assert rec.profiler.root.inclusive_ns() == pytest.approx(7.0)


def test_profile_span_is_passthrough_without_profiler():
    with trace.recording():
        with profile.span("anything"):
            pass  # must not raise nor attach anything
    assert profile.active_profiler() is None


def test_exit_underflow_is_guarded():
    p = Profiler()
    p.exit_()  # popping the root is refused
    assert p.depth == 0
    p.enter("a")
    assert p.depth == 1
    p.exit_()
    p.exit_()
    assert p.depth == 0


def test_leaf_n_matches_n_individual_leaves():
    a, b = Profiler(), Profiler()
    for _ in range(5):
        a.leaf("x", 3.3)
    b.leaf_n("x", 3.3, 5)
    na, nb = a.root.children["x"], b.root.children["x"]
    assert na.calls == nb.calls == 5
    assert na.ns == nb.ns  # bit-identical float order


def test_reset_clears_tree_and_stack():
    p = Profiler()
    p.enter("a")
    p.leaf("x", 1.0)
    p.reset()
    assert p.depth == 0
    assert not p.root.children


# ---------------------------------------------------------------------------
# Rendering and export.
# ---------------------------------------------------------------------------
def test_render_tree_shows_shares_and_paths():
    with profile.profiling() as rec:
        _drive(rec, _ctx())
    out = render_tree(rec.profiler.root, title="t")
    assert "t (root inclusive 25 ns)" in out
    assert "outer" in out and "dpcls" in out
    assert "stray" in out


def test_collapse_is_deterministic_and_sorted():
    def run():
        with profile.profiling() as rec:
            _drive(rec, _ctx())
        return collapse(rec.profiler.root)

    a, b = run(), run()
    assert a == b
    lines = a.splitlines()
    assert lines == sorted(lines)
    assert "all;outer;inner;dpcls 10" in lines
    assert "all;outer;emc 12" in lines
    assert "all;stray 3" in lines
    # Every line is rooted at the synthetic base frame.
    assert all(line.startswith("all") for line in lines)


def test_flatten_and_diff():
    with profile.profiling() as rec_a:
        _drive(rec_a, _ctx())
    with profile.profiling() as rec_b:
        ctx = _ctx()
        _drive(rec_b, ctx)
        with rec_b.span("outer"):
            ctx.charge(100.0, label="emc")  # regression in b
    a = rec_a.profiler.root.to_dict()
    b = rec_b.profiler.root.to_dict()
    flat = flatten(a)
    assert flat["all;outer;inner;dpcls"][2] == pytest.approx(10.0)
    out = diff_profiles(a, b, "a", "b")
    # Every prefix of the regressed path carries the +100 ns delta;
    # unchanged paths (e.g. the dpcls leaf) are filtered out.
    rows = out.splitlines()[2:]
    assert any("+100" in r and "all;outer;emc" in r for r in rows)
    assert not any("dpcls" in r for r in rows)


def test_diff_reports_new_paths():
    a = Profiler().root.to_dict()
    p = Profiler()
    p.leaf("fresh", 9.0)
    out = diff_profiles(a, p.root.to_dict())
    assert "new" in out and "fresh" in out


def test_profile_json_roundtrips():
    with profile.profiling() as rec:
        _drive(rec, _ctx())
    doc = json.loads(profile_json(rec))
    assert doc["tree"]["label"] == "all"
    assert doc["root_inclusive_ns"] == pytest.approx(doc["total_ns"])
    assert doc["cpu_charged_ns"] == pytest.approx(doc["total_ns"])


def test_profile_json_requires_profiler():
    with pytest.raises(ValueError):
        profile_json(TraceRecorder())


# ---------------------------------------------------------------------------
# MetricsSampler.
# ---------------------------------------------------------------------------
def _sampled_run(interval_ns=50.0):
    sampler = MetricsSampler(interval_ns=interval_ns)
    with profile.profiling(sampler=sampler) as rec:
        ctx = _ctx()
        for i in range(20):
            rec.count("dp.rx_packets")
            ctx.charge(10.0, label="emc")
    return sampler, rec


def test_sampler_samples_at_virtual_time_thresholds():
    sampler, rec = _sampled_run(interval_ns=50.0)
    assert sampler.samples, "no samples taken"
    # 20 charges x 10 ns with a 50 ns interval -> a sample per 5 charges.
    assert len(sampler.samples) == 4
    for i, sample in enumerate(sampler.samples):
        assert sample["seq"] == i
    # Timestamps are actual charge instants, strictly increasing.
    ts = [s["t_ns"] for s in sampler.samples]
    assert ts == sorted(ts) and len(set(ts)) == len(ts)
    assert ts[-1] <= rec.cpu_charged_ns


def test_sampler_is_deterministic():
    a, _ = _sampled_run()
    b, _ = _sampled_run()
    assert a.to_jsonl() == b.to_jsonl()


def test_sampler_rates_and_latency_hist():
    sampler, _rec = _sampled_run(interval_ns=50.0)
    last = sampler.samples[-1]
    assert last["counters"]["dp.rx_packets"] == 20
    # 1 packet per 10 ns -> 1e8 packets per virtual second.
    assert last["rates"]["dp.rx_packets"] == pytest.approx(1e8)
    assert len(sampler.latency_hist) == len(sampler.samples)
    assert sampler.latency_hist.percentile(50) == pytest.approx(10.0,
                                                                rel=0.02)


def test_sampler_jsonl_is_sorted_and_tagged():
    sampler, _ = _sampled_run()
    lines = sampler.to_jsonl(extra={"experiment": "unit"}).splitlines()
    assert len(lines) == len(sampler.samples)
    for line in lines:
        doc = json.loads(line)
        assert doc["experiment"] == "unit"
        assert line == json.dumps(doc, sort_keys=True)


def test_sampler_skips_missed_intervals():
    sampler = MetricsSampler(interval_ns=10.0)
    with profile.profiling(sampler=sampler):
        ctx = _ctx()
        ctx.charge(1000.0, label="big")  # jumps 100 intervals at once
        ctx.charge(5.0, label="small")
        ctx.charge(5.0, label="small")
    # One sample at the big charge, one when 10 more ns accumulate —
    # never a backlog of interpolated samples.
    assert len(sampler.samples) == 2


def test_sampler_reset():
    sampler, _ = _sampled_run()
    sampler.reset()
    assert not sampler.samples
    assert sampler.next_due_ns == sampler.interval_ns
    assert len(sampler.latency_hist) == 0


def test_sampler_render_mentions_counters():
    sampler, _ = _sampled_run()
    out = sampler.render()
    assert "dp.rx_packets" in out
    assert "ns per packet" in out
    assert MetricsSampler().render().endswith("(no samples yet)")


def test_recorder_reset_resets_attachments():
    sampler, rec = _sampled_run()
    assert rec.profiler.root.children and sampler.samples
    rec.reset()
    assert not rec.profiler.root.children
    assert not sampler.samples
