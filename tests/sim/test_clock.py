import pytest

from repro.sim.clock import Clock, MSEC, NSEC, SEC, USEC


def test_starts_at_zero_by_default():
    assert Clock().now == 0


def test_starts_at_given_time():
    assert Clock(42).now == 42


def test_rejects_negative_start():
    with pytest.raises(ValueError):
        Clock(-1)


def test_advance_moves_forward():
    c = Clock()
    assert c.advance(100) == 100
    assert c.advance(50) == 150
    assert c.now == 150


def test_advance_zero_is_noop():
    c = Clock(7)
    c.advance(0)
    assert c.now == 7


def test_advance_rejects_negative():
    c = Clock()
    with pytest.raises(ValueError):
        c.advance(-5)


def test_advance_to_future():
    c = Clock()
    c.advance_to(1000)
    assert c.now == 1000


def test_advance_to_past_is_noop():
    c = Clock(500)
    c.advance_to(100)
    assert c.now == 500


def test_unit_constants():
    assert USEC == 1_000 * NSEC
    assert MSEC == 1_000 * USEC
    assert SEC == 1_000 * MSEC
