import pytest

from repro.kernel.netdev import NetDevice, Wire
from repro.net.addresses import MacAddress
from repro.net.builder import make_udp_packet

from .conftest import mac

PKT = make_udp_packet(mac(1), mac(2), "10.0.0.1", "10.0.0.2")


def _dev(name="eth0", i=1):
    d = NetDevice(name, mac(i))
    d.set_up()
    return d


def test_bad_name_rejected():
    with pytest.raises(ValueError):
        NetDevice("", mac(1))
    with pytest.raises(ValueError):
        NetDevice("x" * 16, mac(1))


def test_down_device_drops(ctx):
    d = NetDevice("eth0", mac(1))  # down by default
    assert not d.transmit(PKT, ctx)
    assert d.stats.tx_dropped == 1
    d.deliver(PKT, ctx)
    assert d.stats.rx_dropped == 1


def test_mtu_enforced_on_tx(ctx):
    d = _dev()
    big = make_udp_packet(mac(1), mac(2), "10.0.0.1", "10.0.0.2",
                          payload=b"\x00" * 1600, frame_len=1700)
    assert not d.transmit(big, ctx)
    assert d.stats.tx_dropped == 1


def test_gso_packets_exceed_mtu(ctx):
    d = _dev()
    big = make_udp_packet(mac(1), mac(2), "10.0.0.1", "10.0.0.2",
                          payload=b"\x00" * 1600, frame_len=1700)
    big.meta.gso_size = 1448
    assert d.transmit(big, ctx)


def test_stats_count_packets_and_bytes(ctx):
    d = _dev()
    d.set_rx_handler(lambda pkt, c: None)
    d.transmit(PKT, ctx)
    d.deliver(PKT, ctx)
    assert d.stats.tx_packets == 1
    assert d.stats.tx_bytes == len(PKT)
    assert d.stats.rx_packets == 1


def test_rx_without_handler_drops(ctx):
    d = _dev()
    d.deliver(PKT, ctx)
    assert d.stats.rx_dropped == 1


def test_rx_handler_receives(ctx):
    d = _dev()
    got = []
    d.set_rx_handler(lambda pkt, c: got.append(pkt))
    d.deliver(PKT, ctx)
    assert len(got) == 1


def test_taps_see_both_directions(ctx):
    d = _dev()
    d.set_rx_handler(lambda pkt, c: None)
    seen = []
    d.add_tap(lambda pkt, direction: seen.append(direction))
    d.transmit(PKT, ctx)
    d.deliver(PKT, ctx)
    assert seen == ["tx", "rx"]
    d.remove_tap(d._taps[0])
    d.transmit(PKT, ctx)
    assert len(seen) == 2


class TestWire:
    def test_sets_carrier(self):
        a, b = _dev("a", 1), _dev("b", 2)
        Wire(a, b, gbps=10)
        assert a.carrier and b.carrier

    def test_rejects_double_wiring(self):
        a, b, c = _dev("a", 1), _dev("b", 2), _dev("c", 3)
        Wire(a, b)
        with pytest.raises(ValueError):
            Wire(a, c)

    def test_rejects_bad_speed(self):
        with pytest.raises(ValueError):
            Wire(_dev("a", 1), _dev("b", 2), gbps=0)

    def test_wire_time(self):
        w = Wire(_dev("a", 1), _dev("b", 2), gbps=10)
        # 64B frame + 20B overhead = 672 bits at 10 Gbps = 67.2 ns.
        assert w.wire_time_ns(64) == pytest.approx(67.2)
