import pytest

from repro.ebpf.isa import Reg
from repro.ebpf.program import ProgramBuilder
from repro.ebpf.programs import drop_program
from repro.ebpf.verifier import verify
from repro.kernel.namespace import NetNamespace
from repro.kernel.netdev import NetDevice
from repro.kernel.tc import TC_ACT_SHOT, TcIngressHook
from repro.net.builder import make_udp_packet
from repro.sim.costs import DEFAULT_COSTS

from .conftest import mac


def tc_ok_program():
    b = ProgramBuilder("tc_ok")
    b.mov_imm(Reg.R0, 0)  # TC_ACT_OK
    b.exit_()
    return verify(b.build())

PKT = make_udp_packet(mac(1), mac(2), "10.0.0.1", "10.0.0.2")


@pytest.fixture
def ns_dev():
    ns = NetNamespace("t")
    dev = ns.register(NetDevice("eth0", mac(1)))
    dev.set_up()
    return ns, dev


def test_pass_reaches_original_handler(ns_dev, ctx):
    ns, dev = ns_dev
    got = []
    dev.set_rx_handler(lambda pkt, c: got.append(pkt))
    hook = TcIngressHook(dev, tc_ok_program(), ns)
    dev.deliver(PKT, ctx)
    assert len(got) == 1
    assert hook.n_ok == 1


def test_shot_drops(ns_dev, ctx):
    ns, dev = ns_dev
    got = []
    dev.set_rx_handler(lambda pkt, c: got.append(pkt))
    b = ProgramBuilder("tc_shot")
    b.mov_imm(Reg.R0, TC_ACT_SHOT)
    b.exit_()
    hook = TcIngressHook(dev, verify(b.build()), ns)
    dev.deliver(PKT, ctx)
    assert got == []
    assert hook.n_shot == 1


def test_redirect_to_other_device(ns_dev, ctx):
    ns, dev = ns_dev
    other = ns.register(NetDevice("eth1", mac(2)))
    other.set_up()
    sent = []
    other._transmit = lambda pkt, c: (sent.append(pkt), True)[1]

    from repro.ebpf.helpers import Helper

    b = ProgramBuilder("tc_redirect")
    b.mov_imm(Reg.R1, other.ifindex)
    b.call(Helper.REDIRECT)
    b.exit_()
    hook = TcIngressHook(dev, verify(b.build()), ns)
    dev.deliver(PKT, ctx)
    assert len(sent) == 1
    assert hook.n_redirect == 1


def test_tc_charges_ebpf_interpretation(ns_dev, ctx, cpu):
    # The skb exists before tc runs (the driver allocated it); the hook's
    # own cost is the sandboxed interpretation.
    ns, dev = ns_dev
    dev.set_rx_handler(lambda pkt, c: None)
    TcIngressHook(dev, tc_ok_program(), ns)
    cpu.reset()
    dev.deliver(PKT, ctx)
    assert cpu.busy_ns() == pytest.approx(2 * DEFAULT_COSTS.ebpf_insn_ns)


def test_detach_restores_handler(ns_dev, ctx):
    ns, dev = ns_dev
    got = []
    dev.set_rx_handler(lambda pkt, c: got.append(pkt))
    hook = TcIngressHook(dev, drop_program(), ns)
    dev.deliver(PKT, ctx)
    assert got == []  # drop-valued verdict != OK, packet gone
    hook.detach()
    dev.deliver(PKT, ctx)
    assert len(got) == 1


def test_unverified_program_rejected(ns_dev):
    ns, dev = ns_dev
    from repro.ebpf.isa import Insn
    from repro.ebpf.program import Program

    raw = Program("raw", (Insn("exit"),))
    with pytest.raises(ValueError, match="unverified"):
        TcIngressHook(dev, raw, ns)
