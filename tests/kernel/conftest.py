import pytest

from repro.net.addresses import MacAddress
from repro.sim.cpu import CpuCategory, CpuModel, ExecContext


@pytest.fixture
def cpu():
    return CpuModel(8)


@pytest.fixture
def ctx(cpu):
    return ExecContext(cpu, 0, CpuCategory.SOFTIRQ)


@pytest.fixture
def user_ctx(cpu):
    return ExecContext(cpu, 1, CpuCategory.USER)


def mac(i: int) -> MacAddress:
    return MacAddress.local(i)
