"""Kernel plumbing: IRQ affinity, forwarding, namespaces, VM backends."""

import pytest

from repro.hosts.host import Host
from repro.hosts.vm import QemuTapBackend, VhostNetBackend, VirtualMachine
from repro.kernel.kernel import Kernel
from repro.kernel.netdev import NetDevice
from repro.kernel.nic import PhysicalNic
from repro.net.addresses import ip_to_int
from repro.net.builder import make_udp_packet
from repro.sim.cpu import CpuCategory, CpuModel, ExecContext

from .conftest import mac


class TestKernelPlumbing:
    def test_irq_affinity_explicit(self):
        kernel = Kernel(CpuModel(8))
        nic = PhysicalNic("ens1", mac(1), n_queues=4)
        kernel.init_ns.register(nic)
        kernel.set_irq_affinity("ens1", 2, 7)
        assert kernel.cpu_for_queue(nic, 2) == 7
        # Unpinned queues spread deterministically within range.
        assert 0 <= kernel.cpu_for_queue(nic, 3) < 8

    def test_namespace_management(self):
        kernel = Kernel(CpuModel(1))
        ns = kernel.add_namespace("blue")
        assert kernel.namespace("blue") is ns
        assert ns in kernel.namespaces()
        with pytest.raises(ValueError):
            kernel.add_namespace("blue")

    def test_duplicate_datapath_rejected(self):
        kernel = Kernel(CpuModel(1))
        kernel.load_ovs_module()
        kernel.create_datapath("dp0")
        with pytest.raises(ValueError):
            kernel.create_datapath("dp0")
        assert kernel.datapath("dp0") is not None

    def test_softirq_ctx_cached_per_cpu(self):
        kernel = Kernel(CpuModel(4))
        assert kernel.softirq_ctx(1) is kernel.softirq_ctx(1)
        assert kernel.softirq_ctx(1) is not kernel.softirq_ctx(2)


class TestIpForwarding:
    def test_router_forwards_between_subnets(self):
        host = Host("router", n_cpus=2)
        left = NetDevice("left0", mac(31))
        right = NetDevice("right0", mac(32))
        for d in (left, right):
            host.kernel.init_ns.register(d)
            d.set_up()
        ns = host.kernel.init_ns
        ns.stack.attach(left)
        ns.stack.attach(right)
        ns.add_address("left0", "10.0.1.1", 24)
        ns.add_address("right0", "10.0.2.1", 24)
        ns.stack.ip_forwarding = True
        ns.neighbors.update(ip_to_int("10.0.2.9"), mac(99),
                            right.ifindex, permanent=True)

        forwarded = []
        right._transmit = lambda pkt, c: (forwarded.append(pkt), True)[1]
        ctx = host.user_ctx(0)
        transit = make_udp_packet(mac(40), left.mac,  # addressed to router
                                  "10.0.1.9", "10.0.2.9", 7, 7)
        left.deliver(transit, ctx)
        assert len(forwarded) == 1
        out = forwarded[0]
        assert out.data[0:6] == mac(99).to_bytes()  # next-hop MAC
        assert out.data[22 + 8 - 8] != 0  # frame intact
        # TTL decremented.
        assert out.data[22] == transit.data[22] - 1
        assert ns.stack.counters.get("IpForwDatagrams") == 1

    def test_ttl_exhaustion_dropped(self):
        host = Host("router2", n_cpus=2)
        left = NetDevice("left0", mac(31))
        host.kernel.init_ns.register(left)
        left.set_up()
        ns = host.kernel.init_ns
        ns.stack.attach(left)
        ns.add_address("left0", "10.0.1.1", 24)
        ns.stack.ip_forwarding = True
        from repro.net.ethernet import EthernetHeader, EtherType
        from repro.net.ipv4 import IPV4_HLEN, IPProto, Ipv4Header
        from repro.net.packet import Packet

        ip = Ipv4Header(src=ip_to_int("10.0.1.9"),
                        dst=ip_to_int("172.16.0.1"),
                        proto=IPProto.UDP, total_length=IPV4_HLEN + 8,
                        ttl=1)
        frame = (EthernetHeader(left.mac, mac(40), EtherType.IPV4).pack()
                 + ip.pack() + b"\x00" * 26)
        left.deliver(Packet(frame), host.user_ctx(0))
        assert ns.stack.counters.get("IpForwTtlErrors") == 1


class TestVmBackends:
    def test_vhost_net_charges_system_no_syscalls(self):
        host = Host("vh", n_cpus=4)
        vm = VirtualMachine(host, "vm1", "10.0.0.5", vcpu_core=2)
        tap = vm.attach_tap(qemu_core=3, vhost_net=True)
        assert isinstance(vm.qemu, VhostNetBackend)
        got = []
        tap.set_rx_handler(lambda pkt, c: got.append(pkt))
        # Guest transmits; the vhost worker moves it to the tap's kernel
        # face without any sendto.
        pkt = make_udp_packet(vm.nic.mac, mac(9), "10.0.0.5", "10.0.0.9")
        vm.nic.transmit(pkt, vm.ctx)
        vm.qemu.pump()
        assert len(got) == 1
        assert host.cpu.busy_ns(category=CpuCategory.SYSTEM) > 0
        # No 2us sendto charge anywhere: cheaper than the QEMU path.

    def test_qemu_legacy_pays_syscalls(self):
        host_q = Host("q", n_cpus=4)
        vm_q = VirtualMachine(host_q, "vm1", "10.0.0.5", vcpu_core=2)
        tap_q = vm_q.attach_tap(qemu_core=3, vhost_net=False)
        assert isinstance(vm_q.qemu, QemuTapBackend)
        tap_q.set_rx_handler(lambda pkt, c: None)
        pkt = make_udp_packet(vm_q.nic.mac, mac(9), "10.0.0.5", "10.0.0.9")
        vm_q.nic.transmit(pkt, vm_q.ctx)
        before = host_q.cpu.busy_ns(category=CpuCategory.SYSTEM)
        vm_q.qemu.pump()
        from repro.sim.costs import DEFAULT_COSTS

        delta = host_q.cpu.busy_ns(category=CpuCategory.SYSTEM) - before
        assert delta >= DEFAULT_COSTS.sendto_ns  # tap write syscall

    def test_host_to_guest_via_vhost_net(self):
        host = Host("vh2", n_cpus=4)
        vm = VirtualMachine(host, "vm1", "10.0.0.5", vcpu_core=2)
        tap = vm.attach_tap(qemu_core=3)
        ctx = host.user_ctx(0)
        pkt = make_udp_packet(mac(9), vm.nic.mac, "10.0.0.9", "10.0.0.5")
        tap.transmit(pkt, ctx)  # kernel side sends toward the VM
        vm.qemu.pump()
        assert len(vm.nic.rx_queue) == 1
        vm.pump()
        assert vm.kernel.init_ns.stack.counters.get("IpInReceives") == 1
