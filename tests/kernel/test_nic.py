import pytest

from repro.ebpf.programs import (
    drop_program,
    parse_swap_tx_program,
    pass_program,
    xsk_redirect_program,
)
from repro.ebpf.xdp import XdpContext
from repro.kernel.netdev import NetDevice, Wire
from repro.kernel.nic import NicFeatures, NtupleRule, PhysicalNic
from repro.net.builder import make_udp_packet
from repro.sim.rng import make_rng

from .conftest import mac


def _nic(n_queues=1, name="nic0", i=10, **feat):
    nic = PhysicalNic(name, mac(i), n_queues=n_queues,
                      features=NicFeatures(**feat))
    nic.set_up()
    nic.ifindex = i
    return nic


def _pkt(src="10.0.0.1", dst="10.0.0.2", sport=1, dport=2):
    return make_udp_packet(mac(1), mac(2), src, dst, sport, dport,
                           frame_len=64)


class TestQueueSelection:
    def test_single_queue(self):
        assert _nic(1).select_queue(_pkt()) == 0

    def test_rss_spreads_flows(self):
        nic = _nic(4)
        rng = make_rng("nic-test")
        queues = {
            nic.select_queue(
                _pkt(sport=rng.randrange(65535), dport=rng.randrange(65535))
            )
            for _ in range(200)
        }
        assert queues == {0, 1, 2, 3}

    def test_same_flow_same_queue(self):
        nic = _nic(4)
        assert nic.select_queue(_pkt()) == nic.select_queue(_pkt())

    def test_ntuple_overrides_rss(self):
        nic = _nic(4)
        nic.add_ntuple_rule(NtupleRule(queue=3, proto=17, dst_port=2))
        assert nic.select_queue(_pkt()) == 3

    def test_ntuple_queue_range_checked(self):
        with pytest.raises(ValueError):
            _nic(2).add_ntuple_rule(NtupleRule(queue=5))


class TestReceivePath:
    def test_host_receive_fills_ring(self):
        nic = _nic(1)
        assert nic.host_receive(_pkt())
        assert nic.pending(0) == 1

    def test_ring_overflow_counts_missed(self):
        nic = _nic(1)
        nic.ring_size = 2
        assert nic.host_receive(_pkt())
        assert nic.host_receive(_pkt())
        assert not nic.host_receive(_pkt())
        assert nic.rx_missed == 1

    def test_down_nic_drops(self):
        nic = _nic(1)
        nic.set_up(False)
        assert not nic.host_receive(_pkt())

    def test_hw_offload_metadata(self):
        nic = _nic(1)
        nic.host_receive(_pkt())
        queued = nic.rx_rings[0][0]
        assert queued.meta.rxhash is not None
        assert queued.meta.csum_verified

    def test_no_offload_metadata(self):
        nic = _nic(1, rx_hash=False, rx_checksum=False)
        nic.host_receive(_pkt())
        queued = nic.rx_rings[0][0]
        assert queued.meta.rxhash is None
        assert not queued.meta.csum_verified

    def test_service_delivers_to_handler(self, ctx):
        nic = _nic(1)
        got = []
        nic.set_rx_handler(lambda pkt, c: got.append(pkt))
        nic.host_receive(_pkt())
        assert nic.service_queue(0, ctx) == 1
        assert len(got) == 1
        assert nic.pending() == 0

    def test_service_respects_budget(self, ctx):
        nic = _nic(1)
        nic.set_rx_handler(lambda pkt, c: None)
        for _ in range(100):
            nic.host_receive(_pkt())
        assert nic.service_queue(0, ctx, budget=64) == 64
        assert nic.pending(0) == 36

    def test_service_charges_softirq_time(self, cpu, ctx):
        nic = _nic(1)
        nic.set_rx_handler(lambda pkt, c: None)
        nic.host_receive(_pkt())
        nic.service_queue(0, ctx)
        assert cpu.busy_ns() > 0


class TestXdp:
    def test_whole_device_attach(self, ctx):
        nic = _nic(1)
        got = []
        nic.set_rx_handler(lambda pkt, c: got.append(pkt))
        nic.attach_xdp(XdpContext(drop_program()))
        nic.host_receive(_pkt())
        nic.service_queue(0, ctx)
        assert got == []  # XDP dropped before the stack saw it

    def test_pass_continues_to_stack(self, ctx):
        nic = _nic(1)
        got = []
        nic.set_rx_handler(lambda pkt, c: got.append(pkt))
        nic.attach_xdp(XdpContext(pass_program()))
        nic.host_receive(_pkt())
        nic.service_queue(0, ctx)
        assert len(got) == 1

    def test_per_queue_attach_needs_hardware_support(self):
        nic = _nic(2)  # per_queue_xdp defaults False (Intel model, Fig 6a)
        with pytest.raises(ValueError, match="whole-device"):
            nic.attach_xdp(XdpContext(drop_program()), queue=1)

    def test_per_queue_attach_mellanox_model(self, ctx):
        nic = _nic(2, per_queue_xdp=True)
        got = []
        nic.set_rx_handler(lambda pkt, c: got.append(pkt))
        nic.attach_xdp(XdpContext(drop_program()), queue=0)
        # Steer everything to queue 0 via ntuple, the Figure 6b workflow.
        nic.add_ntuple_rule(NtupleRule(queue=0, proto=17))
        nic.host_receive(_pkt())
        nic.service_queue(0, ctx)
        assert got == []

    def test_xdp_tx_bounces_out(self, ctx):
        nic = _nic(1)
        peer = NetDevice("peer", mac(99))
        peer.set_up()
        seen = []
        peer.set_rx_handler(lambda pkt, c: seen.append(pkt))
        Wire(nic, peer)
        nic.attach_xdp(XdpContext(parse_swap_tx_program()))
        nic.host_receive(_pkt())
        nic.service_queue(0, ctx)
        assert len(seen) == 1
        assert seen[0].data[0:6] == mac(1).to_bytes()  # MACs swapped

    def test_xdp_redirect_to_xsk(self, ctx):
        nic = _nic(1)
        prog, xsks = xsk_redirect_program(n_queues=4)

        class FakeXsk:
            def __init__(self):
                self.got = []

            def kernel_rx(self, pkt, ctx):
                self.got.append(pkt)

        sock = FakeXsk()
        xsks.set_dev(0, 1)
        nic.bind_xsk(0, sock)
        nic.attach_xdp(XdpContext(prog))
        nic.host_receive(_pkt())
        nic.service_queue(0, ctx)
        assert len(sock.got) == 1

    def test_xdp_redirect_without_bound_socket_drops(self, ctx):
        nic = _nic(1)
        prog, xsks = xsk_redirect_program(n_queues=4)
        xsks.set_dev(0, 1)  # map slot exists...
        # ...but no socket bound on the nic side.
        nic.attach_xdp(XdpContext(prog))
        got = []
        nic.set_rx_handler(lambda pkt, c: got.append(pkt))
        nic.host_receive(_pkt())
        nic.service_queue(0, ctx)
        assert got == []


class TestTransmit:
    def test_wire_carries_to_peer_ring(self, ctx):
        a, b = _nic(1, name="a", i=1), _nic(1, name="b", i=2)
        Wire(a, b, gbps=25)
        assert a.transmit(_pkt(), ctx)
        assert b.pending() == 1

    def test_sw_checksum_charged_without_offload(self, cpu, ctx):
        nic = _nic(1, tx_checksum=False)
        pkt = _pkt()
        pkt.meta.csum_partial = True
        before = cpu.busy_ns()
        nic.transmit(pkt, ctx)
        after = cpu.busy_ns()
        from repro.sim.costs import DEFAULT_COSTS

        assert after - before >= DEFAULT_COSTS.checksum_cost(len(pkt))
        assert not pkt.meta.csum_partial

    def test_hw_checksum_free(self, cpu, ctx):
        nic = _nic(1, tx_checksum=True)
        pkt = _pkt()
        pkt.meta.csum_partial = True
        nic.transmit(pkt, ctx)
        from repro.sim.costs import DEFAULT_COSTS

        assert cpu.busy_ns() == pytest.approx(DEFAULT_COSTS.nic_tx_ns)

    def test_software_gso_more_expensive_than_tso(self, cpu, ctx):
        big_payload = b"\x00" * 10_000
        base = make_udp_packet(mac(1), mac(2), "10.0.0.1", "10.0.0.2",
                               payload=big_payload, frame_len=10_100)

        tso_nic = _nic(1, name="t", i=1, tso=True)
        pkt = base.clone()
        pkt.meta.gso_size = 1448
        tso_nic.transmit(pkt, ctx)
        tso_cost = cpu.busy_ns()

        cpu.reset()
        sw_nic = _nic(1, name="s", i=2, tso=False)
        pkt = base.clone()
        pkt.meta.gso_size = 1448
        sw_nic.transmit(pkt, ctx)
        sw_cost = cpu.busy_ns()
        assert sw_cost > 3 * tso_cost
