import pytest

from repro.kernel.kernel import Kernel
from repro.kernel.netdev import Wire
from repro.kernel.nic import PhysicalNic
from repro.kernel.stack import TcpState
from repro.net.addresses import ip_to_int
from repro.sim.cpu import CpuCategory, CpuModel, ExecContext

from .conftest import mac


def _host(name: str, i: int, ip: str):
    cpu = CpuModel(4)
    kernel = Kernel(cpu)
    nic = PhysicalNic(f"eth-{name}", mac(i), n_queues=1)
    kernel.init_ns.register(nic)
    nic.set_up()
    kernel.init_ns.stack.attach(nic)
    kernel.init_ns.add_address(nic.name, ip, 24)
    ctx = ExecContext(cpu, 0, CpuCategory.USER)
    return kernel, nic, ctx


@pytest.fixture
def pair():
    ka, nic_a, ctx_a = _host("a", 1, "10.0.0.1")
    kb, nic_b, ctx_b = _host("b", 2, "10.0.0.2")
    Wire(nic_a, nic_b, gbps=10)

    def pump():
        for _ in range(50):
            moved = ka.pump() + kb.pump()
            if not moved:
                break

    return ka, kb, ctx_a, ctx_b, pump


def test_arp_resolution_round_trip(pair):
    ka, kb, ctx_a, _ctx_b, pump = pair
    sock = ka.init_ns.stack.udp_socket(port=5000)
    ka.init_ns.stack.udp_send(sock, "10.0.0.2", 7, b"hi", ctx_a)
    pump()
    # A resolved B and vice versa (B learned from the request).
    assert ka.init_ns.neighbors.lookup(ip_to_int("10.0.0.2")) is not None
    assert kb.init_ns.neighbors.lookup(ip_to_int("10.0.0.1")) is not None


def test_udp_end_to_end(pair):
    ka, kb, ctx_a, _ctx_b, pump = pair
    server = kb.init_ns.stack.udp_socket(ip="10.0.0.2", port=9999)
    client = ka.init_ns.stack.udp_socket(port=5001)
    ka.init_ns.stack.udp_send(client, "10.0.0.2", 9999, b"ping!", ctx_a)
    pump()
    got = server.recv()
    assert got is not None
    payload, src_ip, src_port = got
    assert payload == b"ping!"
    assert src_ip == ip_to_int("10.0.0.1")
    assert src_port == client.port


def test_udp_unbound_port_counted(pair):
    ka, kb, ctx_a, _ctx_b, pump = pair
    client = ka.init_ns.stack.udp_socket(port=5002)
    ka.init_ns.stack.udp_send(client, "10.0.0.2", 4242, b"nobody", ctx_a)
    pump()
    assert kb.init_ns.stack.counters.get("UdpNoPorts") == 1


def test_icmp_echo_reply(pair):
    ka, kb, ctx_a, _ctx_b, pump = pair
    from repro.net.builder import make_icmp_echo

    # Inject an echo request addressed to B at B's stack directly.
    nic_b = kb.init_ns.device("eth-b")
    echo = make_icmp_echo(mac(1), mac(2), "10.0.0.1", "10.0.0.2",
                          identifier=7, sequence=1)
    kb.init_ns.neighbors.update(ip_to_int("10.0.0.1"), mac(1),
                                nic_b.ifindex)
    nic_b.host_receive(echo)
    pump()
    assert kb.init_ns.stack.counters.get("IcmpOutEchoReps") == 1
    # The reply made it back onto the wire toward A.
    nic_a = ka.init_ns.device("eth-a")
    assert nic_a.stats.rx_packets >= 1


def test_tcp_handshake_and_data(pair):
    ka, kb, ctx_a, ctx_b, pump = pair
    listener = kb.init_ns.stack.tcp_listen("10.0.0.2", 5001)
    client = ka.init_ns.stack.tcp_connect("10.0.0.1", "10.0.0.2", 5001, ctx_a)
    pump()
    assert client.state is TcpState.ESTABLISHED
    assert listener.accept_queue
    server_sock = listener.accept_queue.popleft()
    assert server_sock.state is TcpState.ESTABLISHED

    ka.init_ns.stack.tcp_send(client, b"x" * 5000, ctx_a)
    pump()
    assert server_sock.bytes_received == 5000
    assert server_sock.take_received() == b"x" * 5000


def test_tcp_bidirectional(pair):
    ka, kb, ctx_a, ctx_b, pump = pair
    listener = kb.init_ns.stack.tcp_listen("10.0.0.2", 5002)
    client = ka.init_ns.stack.tcp_connect("10.0.0.1", "10.0.0.2", 5002, ctx_a)
    pump()
    server_sock = listener.accept_queue.popleft()
    ka.init_ns.stack.tcp_send(client, b"request", ctx_a)
    pump()
    kb.init_ns.stack.tcp_send(server_sock, b"response", ctx_b)
    pump()
    assert server_sock.take_received() == b"request"
    assert client.take_received() == b"response"


def test_tcp_close(pair):
    ka, kb, ctx_a, ctx_b, pump = pair
    listener = kb.init_ns.stack.tcp_listen("10.0.0.2", 5003)
    client = ka.init_ns.stack.tcp_connect("10.0.0.1", "10.0.0.2", 5003, ctx_a)
    pump()
    server_sock = listener.accept_queue.popleft()
    ka.init_ns.stack.tcp_close(client, ctx_a)
    pump()
    assert server_sock.state is TcpState.CLOSE_WAIT
    kb.init_ns.stack.tcp_close(server_sock, ctx_b)
    pump()
    assert server_sock.state is TcpState.CLOSED


def test_tcp_send_requires_established(pair):
    ka, _kb, ctx_a, _ctx_b, _pump = pair
    client = ka.init_ns.stack.tcp_connect("10.0.0.1", "10.0.0.2", 1, ctx_a)
    with pytest.raises(ValueError, match="not established"):
        ka.init_ns.stack.tcp_send(client, b"x", ctx_a)


def test_tso_emits_super_segments(pair):
    ka, kb, ctx_a, _ctx_b, pump = pair
    listener = kb.init_ns.stack.tcp_listen("10.0.0.2", 5004)
    client = ka.init_ns.stack.tcp_connect("10.0.0.1", "10.0.0.2", 5004, ctx_a)
    pump()
    server_sock = listener.accept_queue.popleft()
    before = ka.init_ns.stack.counters.get("TcpOutSegs", 0)
    ka.init_ns.stack.tcp_send(client, b"y" * 60_000, ctx_a, tso=True)
    pump()
    after = ka.init_ns.stack.counters.get("TcpOutSegs", 0)
    assert after - before == 1  # one 60 kB super-segment, not 42 MSS pieces
    assert server_sock.bytes_received == 60_000


def test_no_tso_emits_mss_segments(pair):
    ka, kb, ctx_a, _ctx_b, pump = pair
    listener = kb.init_ns.stack.tcp_listen("10.0.0.2", 5005)
    client = ka.init_ns.stack.tcp_connect("10.0.0.1", "10.0.0.2", 5005, ctx_a)
    pump()
    listener.accept_queue.popleft()
    before = ka.init_ns.stack.counters.get("TcpOutSegs", 0)
    ka.init_ns.stack.tcp_send(client, b"y" * 14_600, ctx_a, tso=False)
    pump()
    after = ka.init_ns.stack.counters.get("TcpOutSegs", 0)
    assert after - before == 10  # 14600 / 1460


def test_ip_forwarding_disabled_by_default(pair):
    ka, kb, _ctx_a, _ctx_b, pump = pair
    from repro.net.builder import make_udp_packet

    nic_b = kb.init_ns.device("eth-b")
    transit = make_udp_packet(mac(1), mac(2), "10.0.0.1", "172.16.0.9")
    nic_b.host_receive(transit)
    pump()
    assert kb.init_ns.stack.counters.get("IpInDiscards") == 1
