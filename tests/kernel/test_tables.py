import pytest

from repro.kernel.conntrack import (
    CT_ESTABLISHED,
    CT_INVALID,
    CT_NEW,
    CT_REPLY,
    ConntrackTable,
    TcpCtState,
)
from repro.kernel.neighbor import NeighborState, NeighborTable
from repro.kernel.routing import RoutingTable
from repro.net.addresses import ip_to_int
from repro.net.flow import FiveTuple
from repro.net.ipv4 import IPProto
from repro.net.tcp import TcpFlags

from .conftest import mac


class TestRouting:
    def test_lpm_prefers_longer_prefix(self):
        t = RoutingTable()
        t.add(ip_to_int("10.0.0.0"), 8, ifindex=1)
        t.add(ip_to_int("10.1.0.0"), 16, ifindex=2)
        assert t.lookup(ip_to_int("10.1.2.3")).ifindex == 2
        assert t.lookup(ip_to_int("10.2.2.3")).ifindex == 1
        assert t.lookup(ip_to_int("192.168.0.1")) is None

    def test_default_route(self):
        t = RoutingTable()
        t.add(0, 0, ifindex=3, gateway=ip_to_int("10.0.0.1"))
        r = t.lookup(ip_to_int("8.8.8.8"))
        assert r.ifindex == 3
        assert r.gateway == ip_to_int("10.0.0.1")

    def test_metric_breaks_ties(self):
        t = RoutingTable()
        t.add(ip_to_int("10.0.0.0"), 8, ifindex=1, metric=10)
        t.add(ip_to_int("10.0.0.0"), 8, ifindex=2, metric=1)
        assert t.lookup(ip_to_int("10.1.1.1")).ifindex == 2

    def test_prefix_canonicalised(self):
        t = RoutingTable()
        t.add(ip_to_int("10.0.0.77"), 24, ifindex=1)  # host bits ignored
        assert t.lookup(ip_to_int("10.0.0.200")).ifindex == 1

    def test_remove(self):
        t = RoutingTable()
        t.add(ip_to_int("10.0.0.0"), 24, ifindex=1)
        t.remove(ip_to_int("10.0.0.0"), 24)
        assert t.lookup(ip_to_int("10.0.0.1")) is None
        with pytest.raises(KeyError):
            t.remove(ip_to_int("10.0.0.0"), 24)

    def test_version_bumps(self):
        t = RoutingTable()
        v0 = t.version
        t.add(0, 0, ifindex=1)
        assert t.version > v0

    def test_render(self):
        t = RoutingTable()
        t.add(0, 0, ifindex=1, gateway=ip_to_int("10.0.0.1"))
        assert "default via 10.0.0.1" in t.routes()[0].render()


class TestNeighbors:
    def test_update_lookup(self):
        t = NeighborTable()
        t.update(ip_to_int("10.0.0.2"), mac(2), ifindex=1)
        n = t.lookup(ip_to_int("10.0.0.2"))
        assert n.mac == mac(2)
        assert n.state is NeighborState.REACHABLE

    def test_stale_after_reachable_time(self):
        t = NeighborTable()
        t.update(ip_to_int("10.0.0.2"), mac(2), 1, now_ns=0)
        n = t.lookup(ip_to_int("10.0.0.2"), now_ns=60 * 10**9)
        assert n.state is NeighborState.STALE

    def test_permanent_entries(self):
        t = NeighborTable()
        t.update(ip_to_int("10.0.0.2"), mac(2), 1, permanent=True)
        n = t.lookup(ip_to_int("10.0.0.2"), now_ns=10**15)
        assert n.state is NeighborState.PERMANENT

    def test_delete(self):
        t = NeighborTable()
        t.update(1, mac(1), 1)
        t.delete(1)
        assert t.lookup(1) is None
        with pytest.raises(KeyError):
            t.delete(1)


UDP_FT = FiveTuple(IPProto.UDP, 1, 2, 100, 200)
TCP_FT = FiveTuple(IPProto.TCP, 1, 2, 100, 200)


class TestConntrack:
    def test_unknown_tuple_is_new(self):
        ct = ConntrackTable()
        r = ct.lookup(UDP_FT, zone=0)
        assert r.is_new and not r.is_established

    def test_commit_creates_connection(self):
        ct = ConntrackTable()
        r = ct.process(UDP_FT, zone=0, commit=True)
        assert r.is_new
        assert len(ct) == 1
        again = ct.process(UDP_FT, zone=0)
        assert again.is_established

    def test_reply_direction_flagged(self):
        ct = ConntrackTable()
        ct.process(UDP_FT, zone=0, commit=True)
        r = ct.process(UDP_FT.reversed(), zone=0)
        assert r.is_established and r.is_reply

    def test_zones_are_separate(self):
        ct = ConntrackTable()
        ct.process(UDP_FT, zone=1, commit=True)
        r = ct.lookup(UDP_FT, zone=2)
        assert r.is_new
        assert ct.zone_count(1) == 1
        assert ct.zone_count(2) == 0

    def test_midstream_tcp_invalid(self):
        ct = ConntrackTable()
        r = ct.process(TCP_FT, zone=0, tcp_flags=int(TcpFlags.ACK),
                       commit=True)
        assert r.is_invalid

    def test_tcp_handshake_states(self):
        ct = ConntrackTable()
        r1 = ct.process(TCP_FT, 0, tcp_flags=int(TcpFlags.SYN), commit=True)
        assert r1.connection.tcp_state is TcpCtState.SYN_SENT
        r2 = ct.process(TCP_FT.reversed(), 0,
                        tcp_flags=int(TcpFlags.SYN | TcpFlags.ACK))
        assert r2.connection.tcp_state is TcpCtState.SYN_RECV
        r3 = ct.process(TCP_FT, 0, tcp_flags=int(TcpFlags.ACK))
        assert r3.connection.tcp_state is TcpCtState.ESTABLISHED

    def test_rst_closes(self):
        ct = ConntrackTable()
        ct.process(TCP_FT, 0, tcp_flags=int(TcpFlags.SYN), commit=True)
        r = ct.process(TCP_FT, 0, tcp_flags=int(TcpFlags.RST))
        assert r.connection.tcp_state is TcpCtState.CLOSED

    def test_zone_limit(self):
        # The per-zone connection limit of §2.1.1 (nf_conncount backport).
        ct = ConntrackTable()
        ct.set_zone_limit(5, 2)
        ft2 = FiveTuple(IPProto.UDP, 1, 2, 101, 200)
        ft3 = FiveTuple(IPProto.UDP, 1, 2, 102, 200)
        assert ct.process(UDP_FT, 5, commit=True).is_new
        assert ct.process(ft2, 5, commit=True).is_new
        assert ct.process(ft3, 5, commit=True).is_invalid
        assert ct.zone_count(5) == 2

    def test_expiry(self):
        ct = ConntrackTable()
        ct.process(UDP_FT, 0, commit=True, now_ns=0)
        assert ct.expire(now_ns=10**9) == 0
        assert ct.expire(now_ns=200 * 10**9) == 1
        assert len(ct) == 0
        assert ct.zone_count(0) == 0

    def test_global_capacity(self):
        ct = ConntrackTable(max_connections=1)
        ct.process(UDP_FT, 0, commit=True)
        ft2 = FiveTuple(IPProto.UDP, 9, 9, 9, 9)
        assert ct.process(ft2, 0, commit=True).is_invalid

    def test_flush(self):
        ct = ConntrackTable()
        ct.process(UDP_FT, 0, commit=True)
        ct.flush()
        assert len(ct) == 0
