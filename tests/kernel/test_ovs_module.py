import pytest

from repro.kernel.kernel import Kernel
from repro.kernel.netdev import NetDevice
from repro.kernel.ovs_module import KernelDatapath, Upcall
from repro.net.addresses import MacAddress, ip_to_int
from repro.net.builder import make_tcp_packet, make_udp_packet
from repro.net.flow import EXACT_MASK, extract_flow, mask_from_fields
from repro.net.tunnel import TunnelConfig
from repro.ovs import odp
from repro.sim.cpu import CpuCategory, CpuModel, ExecContext

from .conftest import mac


@pytest.fixture
def world():
    cpu = CpuModel(4)
    kernel = Kernel(cpu)
    kernel.load_ovs_module()
    dp = kernel.create_datapath("system@dp0")
    p1 = NetDevice("p1", mac(1))
    p2 = NetDevice("p2", mac(2))
    for d in (p1, p2):
        kernel.init_ns.register(d)
        d.set_up()
    v1 = dp.add_port(p1)
    v2 = dp.add_port(p2)
    ctx = ExecContext(cpu, 0, CpuCategory.SOFTIRQ)
    return kernel, dp, p1, p2, v1, v2, ctx


def _udp(dst="10.0.0.2", frame_len=None):
    return make_udp_packet(mac(11), mac(12), "10.0.0.1", dst,
                           1000, 2000, frame_len=frame_len)


def _captured(dev):
    got = []
    # Capture what the datapath transmits out of this port.
    orig = dev._transmit
    dev._transmit = lambda pkt, ctx: (got.append(pkt), True)[1]
    return got


def test_module_must_be_loaded():
    kernel = Kernel(CpuModel(1))
    with pytest.raises(RuntimeError, match="not loaded"):
        kernel.create_datapath("dp0")


def test_port_management(world):
    _kernel, dp, p1, _p2, v1, v2, _ctx = world
    assert dp.port_no("p1") == v1.port_no
    with pytest.raises(ValueError):
        dp.add_port(p1)
    dp.del_port("p1")
    with pytest.raises(KeyError):
        dp.port_no("p1")


def test_miss_generates_upcall(world):
    _kernel, dp, p1, _p2, _v1, _v2, ctx = world
    upcalls = []
    dp.upcall_handler = lambda up, c: upcalls.append(up)
    p1.deliver(_udp(), ctx)
    assert len(upcalls) == 1
    assert isinstance(upcalls[0], Upcall)
    assert upcalls[0].key.nw_dst == ip_to_int("10.0.0.2")
    assert dp.n_upcalls == 1
    assert dp.flows.n_missed == 1


def test_upcall_charges_heavily(world):
    kernel, dp, p1, _p2, _v1, _v2, ctx = world
    dp.upcall_handler = lambda up, c: None
    before = kernel.cpu.busy_ns()
    p1.deliver(_udp(), ctx)
    from repro.sim.costs import DEFAULT_COSTS

    assert kernel.cpu.busy_ns() - before >= DEFAULT_COSTS.upcall_ns


def test_flow_hit_forwards(world):
    _kernel, dp, p1, p2, v1, v2, ctx = world
    got = _captured(p2)
    pkt = _udp()
    key = extract_flow(pkt.data, in_port=v1.port_no)
    dp.flow_put(key, EXACT_MASK, [odp.Output(v2.port_no)])
    p1.deliver(pkt, ctx)
    assert len(got) == 1
    assert dp.flows.n_hit == 1
    assert v2.stats_tx == 1


def test_masked_flow_matches_wildcarded_fields(world):
    _kernel, dp, p1, p2, v1, v2, ctx = world
    got = _captured(p2)
    mask = mask_from_fields(in_port=-1, eth_type=-1, nw_dst=-1)
    key = extract_flow(_udp().data, in_port=v1.port_no)
    dp.flow_put(key, mask, [odp.Output(v2.port_no)])
    # Different source port, same dst IP: still matches the megaflow.
    other = make_udp_packet(mac(30), mac(31), "10.9.9.9", "10.0.0.2",
                            42, 4242)
    p1.deliver(other, ctx)
    assert len(got) == 1


def test_set_field_rewrites(world):
    _kernel, dp, p1, p2, v1, v2, ctx = world
    got = _captured(p2)
    pkt = _udp()
    key = extract_flow(pkt.data, in_port=v1.port_no)
    new_dst = ip_to_int("192.168.0.1")
    dp.flow_put(key, EXACT_MASK, [
        odp.SetField("nw_dst", new_dst),
        odp.SetField("eth_dst", mac(42).value),
        odp.Output(v2.port_no),
    ])
    p1.deliver(pkt, ctx)
    out = got[0]
    assert out.data[0:6] == mac(42).to_bytes()
    assert out.data[30:34] == new_dst.to_bytes(4, "big")
    from repro.net.checksum import verify_checksum

    assert verify_checksum(out.data[14:34])  # IP csum refreshed


def test_vlan_push_pop(world):
    _kernel, dp, p1, p2, v1, v2, ctx = world
    got = _captured(p2)
    pkt = _udp()
    key = extract_flow(pkt.data, in_port=v1.port_no)
    dp.flow_put(key, EXACT_MASK, [
        odp.PushVlan(vid=100), odp.Output(v2.port_no),
    ])
    p1.deliver(pkt, ctx)
    tagged = got[0]
    assert tagged.data[12:14] == b"\x81\x00"
    key2 = extract_flow(tagged.data, in_port=v2.port_no)
    dp.flow_put(key2, EXACT_MASK, [odp.PopVlan(), odp.Output(v1.port_no)])
    got1 = _captured(p1)
    p2.deliver(tagged, ctx)
    assert got1[0].data == pkt.data


def test_ct_and_recirc_pipeline(world):
    """The §5.1 firewall shape: ct(commit) then recirc to a second pass
    that matches on ct_state."""
    kernel, dp, p1, p2, v1, v2, ctx = world
    got = _captured(p2)
    pkt = make_tcp_packet(mac(11), mac(12), "10.0.0.1", "10.0.0.2",
                          flags=2)  # SYN
    key = extract_flow(pkt.data, in_port=v1.port_no)
    dp.flow_put(key, EXACT_MASK, [odp.Ct(zone=7, commit=True), odp.Recirc(1)])
    from repro.kernel.conntrack import CT_NEW, CT_TRACKED

    key_pass2 = extract_flow(pkt.data, in_port=v1.port_no, recirc_id=1,
                             ct_state=CT_NEW | CT_TRACKED, ct_zone=7)
    dp.flow_put(key_pass2, EXACT_MASK, [odp.Output(v2.port_no)])
    p1.deliver(pkt, ctx)
    assert len(got) == 1
    assert len(kernel.init_ns.conntrack) == 1
    conn = kernel.init_ns.conntrack.connections()[0]
    assert conn.zone == 7


def test_recirc_depth_limited(world):
    _kernel, dp, p1, _p2, v1, _v2, ctx = world
    pkt = _udp()
    # recirc(1) whose second pass recircs to itself-ish forever.
    key0 = extract_flow(pkt.data, in_port=v1.port_no)
    dp.flow_put(key0, mask_from_fields(in_port=-1), [odp.Recirc(1)])
    key1 = extract_flow(pkt.data, in_port=v1.port_no, recirc_id=1)
    dp.flow_put(key1, mask_from_fields(in_port=-1, recirc_id=-1),
                [odp.Recirc(1)])
    p1.deliver(pkt, ctx)  # must terminate


def test_tunnel_push_pop_roundtrip(world):
    kernel, dp, p1, p2, v1, v2, ctx = world
    got = _captured(p2)
    cfg = TunnelConfig(
        tunnel_type="geneve",
        local_ip=ip_to_int("192.168.1.1"),
        remote_ip=ip_to_int("192.168.1.2"),
        vni=88,
        local_mac=mac(50),
        remote_mac=mac(51),
    )
    tun_vport = dp.add_tunnel_port("geneve_sys")
    inner = _udp()
    key = extract_flow(inner.data, in_port=v1.port_no)
    dp.flow_put(key, EXACT_MASK, [odp.TunnelPush(cfg, v2.port_no)])
    p1.deliver(inner, ctx)
    outer = got[0]
    assert len(outer.data) > len(inner.data)

    # Now receive the encapsulated packet back: pop, then match on tun_id.
    got1 = _captured(p1)
    outer_key = extract_flow(outer.data, in_port=v2.port_no)
    dp.flow_put(outer_key, mask_from_fields(in_port=-1, eth_type=-1,
                                            nw_proto=-1, tp_dst=-1),
                [odp.TunnelPop(tun_vport.port_no)])
    inner_key = extract_flow(inner.data, in_port=tun_vport.port_no,
                             tun_id=88, tun_src=cfg.local_ip,
                             tun_dst=cfg.remote_ip)
    dp.flow_put(inner_key, EXACT_MASK, [odp.Output(v1.port_no)])
    p2.deliver(outer, ctx)
    assert len(got1) == 1
    assert got1[0].data == inner.data
    assert tun_vport.stats_rx == 1


def test_internal_port_reaches_stack(world):
    kernel, dp, p1, _p2, v1, _v2, ctx = world
    vport, internal = dp.add_internal_port("br0", mac(60))
    kernel.init_ns.stack.attach(internal)
    kernel.init_ns.add_address("br0", "172.16.0.1", 24)
    pkt = make_udp_packet(mac(11), mac(60), "172.16.0.2", "172.16.0.1",
                          5, 5353)
    server = kernel.init_ns.stack.udp_socket(ip="172.16.0.1", port=5353)
    key = extract_flow(pkt.data, in_port=v1.port_no)
    dp.flow_put(key, EXACT_MASK, [odp.Output(vport.port_no)])
    p1.deliver(pkt, ctx)
    assert server.recv() is not None


def test_flow_flush_and_del(world):
    _kernel, dp, p1, _p2, v1, v2, ctx = world
    pkt = _udp()
    key = extract_flow(pkt.data, in_port=v1.port_no)
    dp.flow_put(key, EXACT_MASK, [odp.Output(v2.port_no)])
    assert len(dp.flows) == 1
    dp.flow_del(key, EXACT_MASK)
    assert len(dp.flows) == 0
    dp.flow_put(key, EXACT_MASK, [odp.Output(v2.port_no)])
    dp.flow_flush()
    assert len(dp.flows) == 0
    assert dp.flows.n_masks == 0


def test_validate_actions_rejects_garbage():
    with pytest.raises(TypeError):
        odp.validate_actions(["not an action"])
    with pytest.raises(ValueError, match="unreachable"):
        odp.validate_actions([odp.Recirc(1), odp.Output(1)])
    with pytest.raises(ValueError, match="cannot set"):
        odp.validate_actions([odp.SetField("vlan_tci", 0)])
