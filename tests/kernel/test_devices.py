import pytest

from repro.kernel.tap import TapDevice
from repro.kernel.veth import VethPair
from repro.net.builder import make_udp_packet
from repro.sim.costs import DEFAULT_COSTS

from .conftest import mac

PKT = make_udp_packet(mac(1), mac(2), "10.0.0.1", "10.0.0.2")


class TestVeth:
    def test_pair_linked_and_carrier(self):
        pair = VethPair("veth0", "veth1")
        a, b = pair.devices()
        assert a.peer is b and b.peer is a
        assert a.carrier and b.carrier

    def test_transmit_crosses_to_peer(self, ctx):
        pair = VethPair("veth0", "veth1")
        pair.a.set_up()
        pair.b.set_up()
        got = []
        pair.b.set_rx_handler(lambda pkt, c: got.append(pkt))
        assert pair.a.transmit(PKT, ctx)
        assert len(got) == 1

    def test_transmit_charges_veth_cost(self, cpu, ctx):
        pair = VethPair("veth0", "veth1")
        pair.a.set_up()
        pair.b.set_up()
        pair.b.set_rx_handler(lambda pkt, c: None)
        pair.a.transmit(PKT, ctx)
        assert cpu.busy_ns() == pytest.approx(DEFAULT_COSTS.veth_xmit_ns)

    def test_unpaired_end_fails(self, ctx):
        from repro.kernel.veth import VethDevice

        lonely = VethDevice("veth9", mac(9))
        lonely.set_up()
        assert not lonely._transmit(PKT, ctx)

    def test_default_no_zerocopy_afxdp(self):
        # §3.4: zero-copy AF_XDP for veth was still a pending patch.
        pair = VethPair("veth0", "veth1")
        assert not pair.a.afxdp_zerocopy


class TestTap:
    def _tap(self):
        tap = TapDevice("tap0", mac(3))
        tap.set_up()
        return tap

    def test_kernel_tx_queues_for_user(self, ctx):
        tap = self._tap()
        assert tap.transmit(PKT, ctx)
        assert tap.user_pending() == 1

    def test_user_read_returns_frame_and_charges_syscall(self, cpu, user_ctx):
        tap = self._tap()
        tap.transmit(PKT, user_ctx)
        cpu.reset()
        pkt = tap.user_read(user_ctx)
        assert pkt is not None
        from repro.sim.cpu import CpuCategory

        assert cpu.busy_ns(category=CpuCategory.SYSTEM) >= DEFAULT_COSTS.recvfrom_ns

    def test_user_read_empty_returns_none(self, user_ctx):
        assert self._tap().user_read(user_ctx) is None

    def test_user_write_delivers_to_kernel_face(self, user_ctx, cpu):
        tap = self._tap()
        got = []
        tap.set_rx_handler(lambda pkt, c: got.append(pkt))
        cpu.reset()
        tap.user_write(PKT, user_ctx)
        assert len(got) == 1
        from repro.sim.cpu import CpuCategory

        # §3.3: the write is the measured-2us sendto.
        assert cpu.busy_ns(category=CpuCategory.SYSTEM) >= DEFAULT_COSTS.sendto_ns

    def test_queue_limit(self, ctx):
        tap = TapDevice("tap1", mac(4), queue_len=2)
        tap.set_up()
        assert tap.transmit(PKT, ctx)
        assert tap.transmit(PKT, ctx)
        assert not tap.transmit(PKT, ctx)
