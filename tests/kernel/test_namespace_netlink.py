import pytest

from repro.kernel.namespace import NetNamespace
from repro.kernel.netdev import NetDevice
from repro.kernel.netlink import NetlinkMonitor, RtNetlink
from repro.net.addresses import ip_to_int

from .conftest import mac


@pytest.fixture
def ns():
    return NetNamespace("test")


class TestNamespace:
    def test_register_assigns_ifindex(self, ns):
        a = ns.register(NetDevice("eth0", mac(1)))
        b = ns.register(NetDevice("eth1", mac(2)))
        assert a.ifindex == 1
        assert b.ifindex == 2
        assert ns.device_by_ifindex(2) is b

    def test_duplicate_name_rejected(self, ns):
        ns.register(NetDevice("eth0", mac(1)))
        with pytest.raises(ValueError):
            ns.register(NetDevice("eth0", mac(2)))

    def test_unregister_hides_device(self, ns):
        ns.register(NetDevice("eth0", mac(1)))
        ns.unregister("eth0")
        assert not ns.has_device("eth0")
        with pytest.raises(KeyError):
            ns.device("eth0")
        with pytest.raises(KeyError):
            ns.unregister("eth0")

    def test_address_creates_connected_route(self, ns):
        ns.register(NetDevice("eth0", mac(1)))
        ns.add_address("eth0", "10.0.0.1", 24)
        route = ns.routes.lookup(ip_to_int("10.0.0.99"))
        assert route is not None
        assert ns.is_local_ip(ip_to_int("10.0.0.1"))
        assert ns.ip_of("eth0") == ip_to_int("10.0.0.1")

    def test_del_address_removes_route(self, ns):
        ns.register(NetDevice("eth0", mac(1)))
        ns.add_address("eth0", "10.0.0.1", 24)
        ns.del_address("eth0", "10.0.0.1", 24)
        assert ns.routes.lookup(ip_to_int("10.0.0.99")) is None
        with pytest.raises(KeyError):
            ns.del_address("eth0", "10.0.0.1", 24)

    def test_ip_of_requires_address(self, ns):
        ns.register(NetDevice("eth0", mac(1)))
        with pytest.raises(KeyError):
            ns.ip_of("eth0")


class TestRtNetlink:
    def test_get_links(self, ns):
        ns.register(NetDevice("eth0", mac(1)))
        rt = RtNetlink(ns)
        links = rt.get_links()
        assert len(links) == 1
        assert links[0].name == "eth0"
        assert not links[0].up

    def test_get_link_missing(self, ns):
        with pytest.raises(KeyError, match="does not exist"):
            RtNetlink(ns).get_link("nope")

    def test_set_link_up(self, ns):
        dev = ns.register(NetDevice("eth0", mac(1)))
        RtNetlink(ns).set_link_up("eth0")
        assert dev.up

    def test_addresses_routes_neighbors(self, ns):
        ns.register(NetDevice("eth0", mac(1)))
        rt = RtNetlink(ns)
        rt.add_address("eth0", "10.0.0.1", 24)
        rt.add_route(ip_to_int("172.16.0.0"), 12, "eth0",
                     gateway=ip_to_int("10.0.0.254"))
        rt.add_neighbor(ip_to_int("10.0.0.254"), mac(9), "eth0")
        assert rt.get_addresses()[0]["address"] == "10.0.0.1/24"
        assert len(rt.get_routes()) == 2  # connected + static
        assert len(rt.get_neighbors()) == 1

    def test_netlink_charges_system_time(self, ns, cpu, user_ctx):
        ns.register(NetDevice("eth0", mac(1)))
        RtNetlink(ns).get_links(ctx=user_ctx)
        from repro.sim.cpu import CpuCategory

        assert cpu.busy_ns(category=CpuCategory.SYSTEM) > 0


class TestNetlinkMonitor:
    def test_replica_tracks_kernel_tables(self, ns):
        ns.register(NetDevice("eth0", mac(1)))
        mon = NetlinkMonitor(ns)
        assert mon.poll()  # initial sync
        assert not mon.poll()  # nothing changed
        ns.add_address("eth0", "10.0.0.1", 24)
        assert mon.poll()
        assert mon.route_lookup(ip_to_int("10.0.0.5")) is not None

    def test_replica_neighbor_lookup(self, ns):
        ns.register(NetDevice("eth0", mac(1)))
        ns.neighbors.update(ip_to_int("10.0.0.2"), mac(2), 1)
        mon = NetlinkMonitor(ns)
        mon.poll()
        assert mon.neighbor_lookup(ip_to_int("10.0.0.2")).mac == mac(2)
        assert mon.neighbor_lookup(ip_to_int("10.0.0.3")) is None

    def test_replica_lookup_is_lpm(self, ns):
        ns.register(NetDevice("eth0", mac(1)))
        ns.register(NetDevice("eth1", mac(2)))
        ns.add_address("eth0", "10.0.0.1", 8)
        ns.add_address("eth1", "10.1.0.1", 16)
        mon = NetlinkMonitor(ns)
        mon.poll()
        assert mon.route_lookup(ip_to_int("10.1.2.3")).ifindex == 2
        assert mon.route_lookup(ip_to_int("10.200.2.3")).ifindex == 1
