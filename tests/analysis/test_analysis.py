import pytest

from repro.analysis.loc_model import (
    BACKPORT_CASE_STUDIES,
    OUT_OF_TREE_CHURN,
    BackportModel,
)
from repro.analysis.reporting import bar_chart, format_table


class TestChurnDataset:
    def test_covers_2015_through_2019(self):
        assert sorted(OUT_OF_TREE_CHURN) == [2015, 2016, 2017, 2018, 2019]

    def test_backports_every_year(self):
        # "thousands of lines of code changes every year just to stay
        # compatible" (§2.1.1).
        for _features, backports in OUT_OF_TREE_CHURN.values():
            assert backports >= 1_000

    def test_case_studies_match_paper(self):
        erspan = next(c for c in BACKPORT_CASE_STUDIES
                      if "ERSPAN" in c.feature)
        assert erspan.upstream_loc == 50
        assert erspan.backport_loc >= 5_000
        assert erspan.backport_commits == 25
        conncount = next(c for c in BACKPORT_CASE_STUDIES
                         if "conncount" in c.feature)
        assert conncount.upstream_loc == 600


class TestBackportModel:
    def test_amplification_within_case_study_range(self):
        model = BackportModel()
        lo = min(c.backport_loc / c.upstream_loc
                 for c in BACKPORT_CASE_STUDIES)
        hi = max(c.backport_loc / c.upstream_loc
                 for c in BACKPORT_CASE_STUDIES)
        for _ in range(200):
            assert lo <= model.amplification() <= hi

    def test_simulate_years_shape(self):
        model = BackportModel()
        series = model.simulate_years([10_000, 20_000])
        assert len(series) == 2
        for features, backports in series:
            assert backports > 0
        assert series[0][0] == 10_000

    def test_deterministic_given_seed(self):
        a = BackportModel(seed=5).simulate_years([10_000] * 3)
        b = BackportModel(seed=5).simulate_years([10_000] * 3)
        assert a == b

    def test_rejects_zero_kernels(self):
        with pytest.raises(ValueError):
            BackportModel(n_supported_kernels=0)


class TestReporting:
    def test_format_table(self):
        out = format_table(["a", "bb"], [(1, "x"), (22, "yy")], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "22" in out

    def test_format_table_empty(self):
        out = format_table(["col"], [])
        assert "col" in out

    def test_format_table_floats(self):
        out = format_table(["v"], [(3.14159,)])
        assert "3.14" in out

    def test_bar_chart_scales(self):
        out = bar_chart(["a", "b"], [1.0, 2.0], unit="Mpps", width=10)
        a_line, b_line = out.splitlines()
        assert a_line.count("#") * 2 == b_line.count("#")
        assert "Mpps" in out

    def test_bar_chart_zero_and_max(self):
        out = bar_chart(["z"], [0.0], max_value=10)
        assert "#" not in out.splitlines()[0].split("|")[1]

    def test_bar_chart_validates(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])
